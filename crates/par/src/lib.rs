//! Deterministic parallel execution: a dependency-free scoped-thread work
//! pool with an **ordered-collect** API.
//!
//! The repo's determinism contract says every artifact — ledgers, chaos
//! reports, experiment tables — must be a pure function of its inputs
//! (`(app, seed, fast)`), never of the machine it ran on. Naive
//! parallelism breaks that two ways: results arrive in completion order,
//! and floating-point reductions pick up whatever association the racing
//! workers happened to produce. This crate closes both holes:
//!
//! * **Work distribution** is dynamic — workers claim task indices from a
//!   shared [`AtomicUsize`] — so an unlucky schedule cannot idle a core,
//!   but distribution never affects *values*: each task is an independent
//!   pure function of its index.
//! * **Collection is ordered** — every result is placed into the slot of
//!   the task index that produced it, so the output `Vec` reads exactly
//!   as if the tasks had run serially, and any downstream reduction
//!   (float sums included) happens in submission order on the caller's
//!   thread.
//!
//! Together these make a [`Pool`] run **bit-identical regardless of
//! thread count**: `Pool::new(1)` and `Pool::new(8)` return the same
//! bytes, only faster. That property is what lets `repro bench --all
//! --threads 8` emit a ledger byte-identical to `--threads 1`.
//!
//! Parallelism is applied *between* independent runs and kernel tiles,
//! never *inside* a single simulation — the discrete-event engine is
//! inherently sequential and stays on one thread (see DESIGN.md,
//! "Determinism & concurrency").
//!
//! # Example: ordered fan-out
//!
//! ```
//! use rbv_par::Pool;
//!
//! // An embarrassingly parallel map: results come back in submission
//! // order no matter how workers interleave.
//! let squares = Pool::new(4).ordered_tasks(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! // Bit-identical across thread counts — the determinism contract.
//! let serial = Pool::new(1).ordered_tasks(100, |i| (i as f64).sqrt().sin());
//! let wide = Pool::new(8).ordered_tasks(100, |i| (i as f64).sqrt().sin());
//! assert_eq!(serial, wide);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The host's available hardware parallelism, defaulting to 1 when the
/// runtime cannot tell (the conservative choice: serial execution is
/// always correct here, only slower).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Process-wide default worker count consumed by [`Pool::global`];
/// `0` means "not configured, use [`available_parallelism`]".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count (the `repro --threads N`
/// flag calls this once at startup). Values are clamped to at least 1.
pub fn set_threads(n: usize) {
    DEFAULT_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The process-wide default worker count: the last [`set_threads`] value,
/// or [`available_parallelism`] when never configured.
pub fn threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => available_parallelism(),
        n => n,
    }
}

/// A scoped-thread work pool.
///
/// A `Pool` is a configuration value, not a resident thread set: workers
/// are spawned per call inside [`std::thread::scope`] and joined before
/// the call returns, so borrows of stack data are safe and no state leaks
/// between calls. Spawning a few OS threads costs microseconds — noise
/// next to the simulation runs and `O(n²)` kernels fanned across them.
///
/// With `threads == 1` every API degenerates to a plain serial loop on
/// the calling thread (no threads spawned), which is also the reference
/// behavior the parallel paths are property-tested against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with `threads` workers, clamped to at least 1.
    ///
    /// ```
    /// use rbv_par::Pool;
    /// assert_eq!(Pool::new(0).threads(), 1);
    /// assert_eq!(Pool::new(4).threads(), 4);
    /// ```
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A pool sized by the process-wide default ([`threads`]).
    pub fn global() -> Pool {
        Pool::new(threads())
    }

    /// A serial pool (one worker, runs on the calling thread).
    pub fn serial() -> Pool {
        Pool::new(1)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), f(1), …, f(n - 1)` across the workers and returns the
    /// results **in index order**.
    ///
    /// Tasks are claimed dynamically (atomic work index), so long tasks
    /// don't stall short ones; results are scattered back into their
    /// submission slot, so the returned `Vec` is independent of the
    /// schedule. `f` must be a pure function of its index for the
    /// bit-identity guarantee to hold.
    ///
    /// # Panics
    ///
    /// If a task panics, the panic is resumed on the calling thread after
    /// all workers have stopped (no result is silently dropped).
    ///
    /// ```
    /// use rbv_par::Pool;
    /// let cubes = Pool::new(3).ordered_tasks(5, |i| (i as u64).pow(3));
    /// assert_eq!(cubes, vec![0, 1, 8, 27, 64]);
    /// ```
    pub fn ordered_tasks<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut claimed = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            claimed.push((i, f(i)));
                        }
                        claimed
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(claimed) => claimed,
                    Err(payload) => panic::resume_unwind(payload),
                })
                .collect()
        });
        // Ordered collect: scatter each result into its submission slot.
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for (i, r) in buckets.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.unwrap_or_else(|| unreachable!("every index < n is claimed exactly once")))
            .collect()
    }

    /// [`Pool::ordered_tasks`] over a slice: applies `f` to every item
    /// and returns the results in item order.
    ///
    /// ```
    /// use rbv_par::Pool;
    /// let words = ["a", "bb", "ccc"];
    /// let lens = Pool::new(2).ordered_map(&words, |w| w.len());
    /// assert_eq!(lens, vec![1, 2, 3]);
    /// ```
    pub fn ordered_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.ordered_tasks(items.len(), |i| f(&items[i]))
    }
}

impl Default for Pool {
    /// [`Pool::global`].
    fn default() -> Pool {
        Pool::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        for threads in [1, 2, 3, 8, 33] {
            let out = Pool::new(threads).ordered_tasks(100, |i| i * 2);
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn unbalanced_tasks_still_collect_in_order() {
        // Task i sleeps inversely to its index, so completion order is
        // roughly the reverse of submission order.
        let out = Pool::new(4).ordered_tasks(8, |i| {
            std::thread::sleep(std::time::Duration::from_millis((8 - i) as u64));
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn float_results_bit_identical_across_thread_counts() {
        let reference: Vec<f64> = Pool::new(1).ordered_tasks(512, |i| (i as f64 * 0.37).tanh());
        for threads in [2, 4, 7, 16] {
            let wide = Pool::new(threads).ordered_tasks(512, |i| (i as f64 * 0.37).tanh());
            let same = reference
                .iter()
                .zip(&wide)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{threads} threads diverged from serial");
        }
    }

    #[test]
    fn zero_tasks_and_zero_threads_are_fine() {
        let empty: Vec<u8> = Pool::new(0).ordered_tasks(0, |_| 0u8);
        assert!(empty.is_empty());
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn ordered_map_borrows_items() {
        let data = vec![vec![1u32, 2], vec![3], vec![]];
        let sums = Pool::new(2).ordered_map(&data, |v| v.iter().sum::<u32>());
        assert_eq!(sums, vec![3, 3, 0]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).ordered_tasks(16, |i| {
                if i == 7 {
                    panic!("boom at 7");
                }
                i
            })
        });
        assert!(result.is_err(), "task panic must reach the caller");
    }

    #[test]
    fn global_default_respects_set_threads() {
        // Note: process-global; keep this the only test mutating it.
        set_threads(3);
        assert_eq!(threads(), 3);
        assert_eq!(Pool::global().threads(), 3);
        set_threads(0); // clamps to 1
        assert_eq!(threads(), 1);
    }
}
