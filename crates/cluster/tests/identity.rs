//! Cluster identity and invariant gates.
//!
//! * The degenerate single-machine cluster path must be **bit-identical**
//!   to the single-machine engine (`rbv_os::run_simulation`) on the same
//!   config — the cluster's `Machine` start/step/finish loop is pure code
//!   motion over the engine's `run`, and this property pins that.
//! * A three-tier run's per-tier stages plus network hops must exactly
//!   partition every request's client-visible latency, with zero
//!   invariant violations, for every application.

use proptest::prelude::*;
use rbv_cluster::{
    machine_loop_run, run_cluster, shard_seed, single_machine_config, ClusterSpec, ClusterTopology,
    NetworkModel,
};
use rbv_os::run_simulation;
use rbv_par::Pool;
use rbv_workloads::{factory_for, AppId};

fn spec(app: AppId, topology: ClusterTopology, requests: usize, seed: u64) -> ClusterSpec {
    ClusterSpec {
        app,
        requests,
        overload: 1.0,
        seed,
        easing: false,
        topology,
        network: NetworkModel::lan(),
        trace_spans: false,
        wallclock: false,
    }
}

/// Harness scale mirrored from the cluster crate (private there).
fn scale_of(app: AppId) -> f64 {
    match app {
        AppId::Tpch => 0.5,
        AppId::Webwork => 0.1,
        _ => 1.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The PR 9 parity property: for any seed/app/overload, the cluster's
    /// single-machine loop and the engine's `run_simulation` produce the
    /// same `RunResult`, field for field — completion order, timelines,
    /// stats, total time.
    #[test]
    fn single_machine_cluster_is_bit_identical_to_the_engine(
        seed in 0u64..1_000_000,
        app_idx in 0usize..3,
        overload in prop::sample::select(vec![0.5f64, 1.0, 2.0]),
    ) {
        let app = [AppId::WebServer, AppId::Tpcc, AppId::Rubis][app_idx];
        let mut s = spec(app, ClusterTopology::Single, 24, seed);
        s.overload = overload;
        let mean_service = rbv_openloop::probe_mean_service(app, seed).expect("probe");
        let shard = shard_seed(seed, 0);
        let cfg = single_machine_config(&s, mean_service, shard, None);

        let mut f1 = factory_for(app, shard, scale_of(app));
        let via_cluster = machine_loop_run(cfg.clone(), f1.as_mut(), s.requests).expect("cluster loop");
        let mut f2 = factory_for(app, shard, scale_of(app));
        let via_engine = run_simulation(cfg, f2.as_mut(), s.requests).expect("engine run");

        prop_assert_eq!(via_cluster, via_engine);
    }
}

/// The tentpole acceptance gate: a three-tier run of every application
/// produces per-tier attribution whose stages exactly partition each
/// request's client-visible latency — invariant-checked, zero
/// violations — and resolves every offered request.
#[test]
fn three_tier_partition_is_exact_for_every_app() {
    for app in [
        AppId::WebServer,
        AppId::Tpcc,
        AppId::Tpch,
        AppId::Rubis,
        AppId::Webwork,
    ] {
        let s = spec(app, ClusterTopology::ThreeTier, 48, 11);
        let report = run_cluster(&s, &Pool::serial()).expect("cluster run");
        assert!(
            report.clean(),
            "{app:?}: {:?}",
            report.summary.invariants.first_violation()
        );
        assert_eq!(
            report.summary.completed + report.summary.failed,
            48,
            "{app:?}"
        );
        // Per-request partition checks ran: one per completed request
        // (whole-path) plus one per leg (wait + service == residence).
        assert!(
            report.summary.invariants.checks() as u64 > report.summary.completed,
            "{app:?}"
        );
    }
}

/// The serialized ledger is byte-identical at any thread count, single
/// and three-tier alike, including across the multi-shard boundary.
#[test]
fn ledger_bytes_are_thread_count_invariant() {
    for topology in [ClusterTopology::Single, ClusterTopology::ThreeTier] {
        let s = spec(AppId::Tpcc, topology, 96, 5);
        let a = run_cluster(&s, &Pool::serial()).expect("serial");
        let b = run_cluster(&s, &Pool::new(4)).expect("threaded");
        assert_eq!(
            a.to_json().to_string_compact(),
            b.to_json().to_string_compact(),
            "{topology:?}"
        );
    }
}
