//! Multi-tier cluster simulation for the Request Behavior Variations
//! reproduction: `repro cluster` steps several [`rbv_os::Machine`]
//! instances — a frontend, an application tier, and a database tier —
//! under one deterministic cross-machine event loop, connected by a
//! seeded latency/bandwidth network model.
//!
//! Request identity propagates across tiers: each request's stages are
//! split into per-tier *legs* (consecutive same-machine stages), every
//! leg runs on its machine as an ordinary injected request, and every
//! inter-tier transfer is a network *hop* with explicit serialization
//! and propagation delay. The loop emits
//! [`rbv_telemetry::TraceEvent::TierLeg`] /
//! [`rbv_telemetry::TraceEvent::TierHop`] events
//! into [`rbv_trace::TierSpanCollector`], whose reconstruction enforces
//! the cross-tier extension of the span-accounting invariant: per-tier
//! residencies plus network hops **exactly partition** each request's
//! client-visible latency, in integer cycles.
//!
//! Determinism is the same contract as the rest of the workspace:
//!
//! * The cross-machine event loop is serial per shard and picks the
//!   globally next event under a canonical ordering (pending network
//!   deliveries, then the next client arrival, then machines in index
//!   order), so a shard's event sequence is a pure function of its seed.
//! * The shard plan depends only on the request count, shard digests
//!   merge in shard order, and the serialized `rbv-cluster/v1` ledger is
//!   byte-identical at any `--threads` value.
//! * A [`ClusterTopology::Single`] run drives one machine through the
//!   same [`Machine::start`]/[`Machine::step`] loop the cluster uses and
//!   is bit-identical to [`rbv_os::run_simulation`] on the same config
//!   (property-tested).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::{BTreeMap, HashMap};

use rbv_core::series::Metric;
use rbv_core::stats::percentile;
use rbv_openloop::probe_mean_service;
use rbv_os::{
    ArrivalProcess, CompletedRequest, Machine, RbvError, RunResult, RunStats, SchedulerPolicy,
    SimConfig,
};
use rbv_sim::{Cycles, SimRng};
use rbv_telemetry::{Json, TraceEvent, TraceSink};
use rbv_trace::{ClusterSpanRecord, TierSpanCollector, TierSummary};
use rbv_workloads::{factory_for, AppId, Component, Request, RequestFactory};

/// Schema tag embedded in every cluster ledger; bumped on layout changes.
pub const SCHEMA: &str = "rbv-cluster/v1";

/// Target requests per shard. Smaller than the serve harness's because a
/// three-tier shard steps three engines plus the network loop.
const SHARD_TARGET: usize = 16_384;

/// Shard-count cap (same rationale as the serve harness: the plan must
/// be independent of the worker pool).
const MAX_SHARDS: usize = 64;

/// SplitMix64 finalizer — same constants as the engine's decision
/// hashes, used for shard seeds and per-hop payload sizes so neither
/// consumes an RNG stream.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Harness scale for the long-request applications (mirrors the serve
/// and chaos harnesses so cluster runs finish in reasonable time).
fn scale_of(app: AppId) -> f64 {
    match app {
        AppId::Tpch => 0.5,
        AppId::Webwork => 0.1,
        _ => 1.0,
    }
}

/// How many machines the cluster steps and where stages land.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterTopology {
    /// One machine hosting every stage — the degenerate configuration
    /// whose event sequence is bit-identical to the single-machine
    /// engine ([`rbv_os::run_simulation`]) on the same config.
    Single,
    /// Three machines: frontend (web tier + standalone stages),
    /// application tier, and database.
    ThreeTier,
}

impl ClusterTopology {
    /// Tier labels in machine-index order.
    pub fn tiers(self) -> &'static [&'static str] {
        match self {
            ClusterTopology::Single => &["standalone"],
            ClusterTopology::ThreeTier => &["frontend", "app", "db"],
        }
    }

    /// Ledger label.
    pub fn label(self) -> &'static str {
        match self {
            ClusterTopology::Single => "single",
            ClusterTopology::ThreeTier => "three-tier",
        }
    }

    /// Which machine runs a stage of the given component.
    fn place(self, component: Component) -> usize {
        match self {
            ClusterTopology::Single => 0,
            ClusterTopology::ThreeTier => match component {
                Component::WebTier | Component::Standalone => 0,
                Component::AppTier => 1,
                Component::Database => 2,
            },
        }
    }
}

/// The seeded network connecting cluster machines: every ordered
/// machine pair is an independent link with a serialization rate and a
/// propagation delay, and each link serializes one transfer at a time
/// (FIFO `busy_until` per link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkModel {
    /// Per-hop propagation delay, cycles (added after serialization).
    pub base_latency_cycles: u64,
    /// Serialization cost per payload byte, cycles.
    pub cycles_per_byte: u64,
}

impl NetworkModel {
    /// A datacenter LAN at the simulator's 3 GHz clock: 50 µs one-way
    /// latency, ~1 Gbit/s serialization (24 cycles ≈ 8 ns per byte).
    pub fn lan() -> NetworkModel {
        NetworkModel {
            base_latency_cycles: 150_000,
            cycles_per_byte: 24,
        }
    }
}

impl Default for NetworkModel {
    fn default() -> NetworkModel {
        NetworkModel::lan()
    }
}

/// Everything `repro cluster <app>` needs to know.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Application under test.
    pub app: AppId,
    /// Total requests to offer across all shards.
    pub requests: usize,
    /// Offered load as a multiple of a *single* machine's measured
    /// capacity (the serve harness's yardstick, kept so `--overload`
    /// means the same thing in both harnesses; a three-tier cluster
    /// divides that work across machines).
    pub overload: f64,
    /// Base seed; shard seeds derive from it by SplitMix64.
    pub seed: u64,
    /// Arm the §4 contention-easing scheduler on every machine, with a
    /// per-shard threshold calibrated from a stock pass (the warehouse
    /// idiom: shards stay self-contained).
    pub easing: bool,
    /// Machine count and stage placement.
    pub topology: ClusterTopology,
    /// Link model for inter-tier hops.
    pub network: NetworkModel,
    /// Retain per-request span records for Perfetto export (memory grows
    /// with the request count — bounded runs only).
    pub trace_spans: bool,
    /// Record wall-clock timing under the ledger's non-diffed
    /// `"profile"` member.
    pub wallclock: bool,
}

impl ClusterSpec {
    /// A three-tier cluster spec with the default LAN network at 1×
    /// offered load.
    pub fn three_tier(app: AppId) -> ClusterSpec {
        ClusterSpec {
            app,
            requests: 600,
            overload: 1.0,
            seed: 42,
            easing: false,
            topology: ClusterTopology::ThreeTier,
            network: NetworkModel::lan(),
            trace_spans: false,
            wallclock: false,
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns [`RbvError::Config`] on a nonsensical spec.
    pub fn validate(&self) -> Result<(), RbvError> {
        if self.requests == 0 {
            return Err(RbvError::Config("cluster requires requests >= 1".into()));
        }
        if !self.overload.is_finite() || self.overload <= 0.0 {
            return Err(RbvError::Config(
                "cluster overload must be finite and positive".into(),
            ));
        }
        if self.network.cycles_per_byte == 0 && self.network.base_latency_cycles == 0 {
            return Err(RbvError::Config(
                "cluster network must impose some delay (zero-cost links would \
                 collapse hop attribution)"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// The shard plan: per-shard request counts summing to `requests`, a
/// pure function of the request count alone (never of `--threads`).
fn shard_plan(requests: usize) -> Vec<usize> {
    let shards = requests.div_ceil(SHARD_TARGET).clamp(1, MAX_SHARDS);
    let base = requests / shards;
    let rem = requests % shards;
    (0..shards).map(|i| base + usize::from(i < rem)).collect()
}

/// The shard seed for shard `index` — SplitMix64 of `(seed, index)`,
/// the workspace-wide idiom.
pub fn shard_seed(seed: u64, index: usize) -> u64 {
    splitmix64(splitmix64(seed ^ 0xC105_7E12).wrapping_add(index as u64))
}

/// Exponential gap draw, mirroring the engine's open-loop arrival
/// sampler (floored at one cycle).
fn exp_gap(rng: &mut SimRng, mean: f64) -> u64 {
    use rand::Rng;
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (-mean * u.ln()).max(1.0) as u64
}

/// The easing scheduler's high-usage threshold: the 80th percentile of
/// observed per-period L2 misses per instruction — the warehouse
/// derivation, applied to whatever completions the calibration pass
/// produced on this machine.
fn easing_threshold(samples: &[f64]) -> f64 {
    percentile(samples, 0.8).unwrap_or(0.0)
}

/// Appends every per-period L2-misses-per-instruction sample of a
/// completed request (or leg) to `out`.
fn collect_mpi(request: &CompletedRequest, out: &mut Vec<f64>) {
    let (_, mut values) = request.timeline.weighted_values(Metric::L2MissesPerIns);
    out.append(&mut values);
}

/// Simulation config for one cluster machine running under external
/// arrivals (the cluster loop injects every request).
fn machine_config(
    spec: &ClusterSpec,
    shard_seed_value: u64,
    machine: usize,
    threshold: Option<f64>,
) -> SimConfig {
    let mut cfg =
        SimConfig::paper_default().with_interrupt_sampling(spec.app.sampling_period_micros());
    cfg.seed = splitmix64(shard_seed_value ^ (0xFEED_0000 + machine as u64));
    cfg.arrivals = ArrivalProcess::External;
    if let Some(high_usage_threshold) = threshold {
        cfg.scheduler = SchedulerPolicy::ContentionEasing {
            resched_interval: Cycles::from_millis(5),
            high_usage_threshold,
            alpha: 0.6,
        };
        cfg.easing_error_gate = Some(0.35);
    }
    cfg
}

/// Simulation config for the degenerate single-machine topology: the
/// serve harness's open-loop Poisson config, so the cluster's
/// [`machine_loop_run`] on it must be bit-identical to
/// [`rbv_os::run_simulation`] (the PR 9 engine) on the same config.
pub fn single_machine_config(
    spec: &ClusterSpec,
    mean_service: f64,
    shard_seed_value: u64,
    threshold: Option<f64>,
) -> SimConfig {
    let mut cfg =
        SimConfig::paper_default().with_interrupt_sampling(spec.app.sampling_period_micros());
    cfg.seed = shard_seed_value;
    let cores = cfg.machine.topology.cores as f64;
    let base_gap = (mean_service / (cores * spec.overload)).max(1.0);
    cfg.arrivals = ArrivalProcess::OpenPoisson {
        mean_interarrival: Cycles::new(base_gap.max(1.0) as u64),
    };
    if let Some(high_usage_threshold) = threshold {
        cfg.scheduler = SchedulerPolicy::ContentionEasing {
            resched_interval: Cycles::from_millis(5),
            high_usage_threshold,
            alpha: 0.6,
        };
        cfg.easing_error_gate = Some(0.35);
    }
    cfg
}

/// Drives one self-spawning [`Machine`] to its target through the same
/// start/step/finish loop the cluster uses — the degenerate
/// single-machine path, exposed so the bit-identity property test can
/// compare it against [`rbv_os::run_simulation`] directly.
///
/// # Errors
///
/// Returns [`RbvError::Config`] if `cfg` is invalid.
pub fn machine_loop_run(
    cfg: SimConfig,
    factory: &mut dyn RequestFactory,
    target: usize,
) -> Result<RunResult, RbvError> {
    let mut machine = Machine::new(cfg, target)?;
    machine.start(factory);
    while !machine.target_reached() {
        if !machine.step(factory) {
            break;
        }
    }
    Ok(machine.finish())
}

/// A request's path through the cluster: its per-tier legs (sub-requests
/// of consecutive same-machine stages) and which machine runs each.
struct PathState {
    legs: Vec<Request>,
    machines: Vec<usize>,
    next_leg: usize,
    hops: u32,
}

/// Splits a request's stages into per-tier legs under the topology's
/// placement. Consecutive stages on the same machine stay one leg, so a
/// leg is itself a well-formed [`Request`].
fn split_legs(request: &Request, topology: ClusterTopology) -> PathState {
    let mut legs: Vec<Request> = Vec::new();
    let mut machines: Vec<usize> = Vec::new();
    for stage in &request.stages {
        let machine = topology.place(stage.component);
        if machines.last() == Some(&machine) {
            if let Some(leg) = legs.last_mut() {
                leg.stages.push(stage.clone());
            }
        } else {
            legs.push(Request {
                app: request.app,
                class: request.class,
                stages: vec![stage.clone()],
            });
            machines.push(machine);
        }
    }
    PathState {
        legs,
        machines,
        next_leg: 0,
        hops: 0,
    }
}

/// An in-flight network transfer, keyed in the delivery map by
/// `(deliver_at, rid, hop)` — the canonical delivery order.
struct Transfer {
    from: usize,
    to: usize,
    departed: u64,
    bytes: u64,
}

/// Per-machine engine totals surfaced in the ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineTotals {
    /// Machine index.
    pub machine: u32,
    /// Tier label.
    pub tier: String,
    /// Discrete events the machine's engine processed, across shards.
    pub engine_events: u64,
    /// Involuntary context switches, across shards.
    pub context_switches: u64,
}

impl MachineTotals {
    fn absorb(&mut self, stats: &RunStats) {
        self.engine_events += stats.engine_events;
        self.context_switches += stats.context_switches;
    }
}

/// One shard's digest, merged in shard order by [`run_cluster`].
struct ShardOutput {
    summary: TierSummary,
    records: Vec<ClusterSpanRecord>,
    machines: Vec<RunStats>,
}

/// The hop payload size in bytes — hash-derived (consumes no RNG
/// stream): 256 B to 4 KiB, a request/response envelope.
fn hop_bytes(shard_seed_value: u64, rid: u64, hop: u32) -> u64 {
    256 + splitmix64(shard_seed_value ^ (rid << 20) ^ (u64::from(hop) << 52)) % 3840
}

/// One shard's slice of the plan: its derived seed, request count, and
/// the global id of its first request.
#[derive(Debug, Clone, Copy)]
struct ShardJob {
    seed: u64,
    n: usize,
    rid_base: u64,
}

/// Runs one three-tier shard: `job.n` requests with globally unique ids
/// starting at `job.rid_base`, stepped under the canonical cross-machine
/// ordering. When `calibration` is given, per-machine L2-miss samples
/// are collected into it (the easing stock pass).
#[allow(clippy::too_many_lines)]
fn run_tier_shard(
    spec: &ClusterSpec,
    mean_service: f64,
    job: ShardJob,
    thresholds: Option<&[f64]>,
    retain: bool,
    mut calibration: Option<&mut Vec<Vec<f64>>>,
) -> Result<ShardOutput, RbvError> {
    let ShardJob {
        seed: shard_seed_value,
        n,
        rid_base,
    } = job;
    let tiers = spec.topology.tiers();
    let n_machines = tiers.len();
    let mut machines: Vec<Machine> = Vec::with_capacity(n_machines);
    let mut factories: Vec<Box<dyn RequestFactory + Send>> = Vec::with_capacity(n_machines);
    for m in 0..n_machines {
        let threshold = thresholds.and_then(|t| t.get(m).copied());
        let cfg = machine_config(spec, shard_seed_value, m, threshold);
        machines.push(Machine::new(cfg, n)?);
        // Stub factories: External machines never spawn, but the step
        // API is uniform; give each a distinct derived seed anyway.
        factories.push(factory_for(
            spec.app,
            splitmix64(shard_seed_value ^ (0xFAC7_0000 + m as u64)),
            scale_of(spec.app),
        ));
    }
    for (machine, factory) in machines.iter_mut().zip(factories.iter_mut()) {
        machine.start(factory.as_mut());
    }
    if let Some(mpi) = calibration.as_deref_mut() {
        mpi.resize_with(n_machines, Vec::new);
    }

    let cores = SimConfig::paper_default().machine.topology.cores as f64;
    let mean_gap = (mean_service / (cores * spec.overload)).max(1.0);
    let mut arrival_rng = SimRng::seed_from(splitmix64(shard_seed_value ^ 0xA441_73A1));
    let mut factory = factory_for(spec.app, shard_seed_value, scale_of(spec.app));

    let mut collector = if retain {
        TierSpanCollector::retaining()
    } else {
        TierSpanCollector::new()
    };
    let mut paths: Vec<PathState> = Vec::with_capacity(n);
    let mut inflight: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
    let mut transfers: BTreeMap<(u64, u64, u32), Transfer> = BTreeMap::new();
    let mut links = vec![vec![0u64; n_machines]; n_machines];
    let mut next_arrival: u64 = 0;
    let mut offered: usize = 0;
    let mut resolved: usize = 0;
    let mut departures: u64 = 0;
    let mut deliveries: u64 = 0;

    // Schedules the hop that carries `rid` (local index) from machine
    // `from` toward `to`, departing at `departed`.
    let send = |local: usize,
                from: usize,
                to: usize,
                departed: u64,
                paths: &mut Vec<PathState>,
                transfers: &mut BTreeMap<(u64, u64, u32), Transfer>,
                links: &mut Vec<Vec<u64>>,
                departures: &mut u64| {
        let rid = rid_base + local as u64;
        let hop = paths[local].hops;
        paths[local].hops += 1;
        let bytes = hop_bytes(shard_seed_value, rid, hop);
        let start = departed.max(links[from][to]);
        let serialized = start + bytes * spec.network.cycles_per_byte;
        links[from][to] = serialized;
        let deliver_at = serialized + spec.network.base_latency_cycles;
        *departures += 1;
        transfers.insert(
            (deliver_at, rid, hop),
            Transfer {
                from,
                to,
                departed,
                bytes,
            },
        );
    };

    while resolved < n {
        // The canonical global ordering: among the earliest pending
        // instants, network deliveries rank before the next client
        // arrival, which ranks before machine-internal events in
        // machine-index order.
        let mut best: Option<(u64, usize)> = None;
        let mut consider = |time: u64, rank: usize| {
            if best.is_none_or(|b| (time, rank) < b) {
                best = Some((time, rank));
            }
        };
        if let Some((&(at, _, _), _)) = transfers.first_key_value() {
            consider(at, 0);
        }
        if offered < n {
            consider(next_arrival, 1);
        }
        for (i, machine) in machines.iter().enumerate() {
            if let Some(t) = machine.peek_time() {
                consider(t.get(), 2 + i);
            }
        }
        let Some((_, rank)) = best else {
            return Err(RbvError::Config(format!(
                "cluster shard deadlocked with {resolved}/{n} resolved"
            )));
        };

        if rank == 0 {
            // Deliver the earliest network transfer.
            let Some((&key, _)) = transfers.first_key_value() else {
                continue;
            };
            let Some(transfer) = transfers.remove(&key) else {
                continue;
            };
            let (at, rid, hop) = key;
            deliveries += 1;
            collector.record(TraceEvent::TierHop {
                ts: Cycles::new(at),
                rid,
                from_machine: transfer.from as u32,
                to_machine: transfer.to as u32,
                hop,
                departed: Cycles::new(transfer.departed),
                bytes: transfer.bytes,
            });
            let local = (rid - rid_base) as usize;
            if paths[local].next_leg == paths[local].legs.len() {
                // The response hop reached the frontend: client end.
                resolved += 1;
                collector.record(TraceEvent::RequestEnd {
                    ts: Cycles::new(at),
                    rid,
                });
            } else {
                let leg_idx = paths[local].next_leg;
                let leg = paths[local].legs[leg_idx].clone();
                let machine_local = machines[transfer.to].inject(leg, Cycles::new(at));
                inflight.insert((transfer.to, machine_local), (local, leg_idx));
            }
        } else if rank == 1 {
            // Offer the next client request.
            let at = next_arrival;
            let local = offered;
            let rid = rid_base + local as u64;
            offered += 1;
            let request = factory.next_request();
            collector.record(TraceEvent::RequestBegin {
                ts: Cycles::new(at),
                rid,
                app: request.app.to_string(),
                class: request.class.to_string(),
            });
            let path = split_legs(&request, spec.topology);
            let first = path.machines.first().copied().unwrap_or(0);
            paths.push(path);
            if first == 0 {
                let machine_local =
                    machines[0].inject(paths[local].legs[0].clone(), Cycles::new(at));
                inflight.insert((0, machine_local), (local, 0));
            } else {
                // Ingress hop: the frontend forwards the request.
                send(
                    local,
                    0,
                    first,
                    at,
                    &mut paths,
                    &mut transfers,
                    &mut links,
                    &mut departures,
                );
            }
            next_arrival = at + exp_gap(&mut arrival_rng, mean_gap);
        } else {
            // Step the machine owning the globally next event.
            let i = rank - 2;
            machines[i].step(factories[i].as_mut());
            let (completed, failed) = machines[i].drain_finished();
            for done in completed {
                let Some((local, leg_idx)) = inflight.remove(&(i, done.id)) else {
                    return Err(RbvError::Config(format!(
                        "cluster shard: machine {i} completed unknown request {}",
                        done.id
                    )));
                };
                if let Some(mpi) = calibration.as_deref_mut() {
                    collect_mpi(&done, &mut mpi[i]);
                }
                let rid = rid_base + local as u64;
                let residence = done.finished_at.get() - done.arrived_at.get();
                let service = (done.cpu_cycles().round() as u64).min(residence);
                collector.record(TraceEvent::TierLeg {
                    ts: done.finished_at,
                    rid,
                    machine: i as u32,
                    tier: tiers[i].to_string(),
                    leg: leg_idx as u32,
                    arrived: done.arrived_at,
                    wait_cycles: residence - service,
                    service_cycles: service,
                    cpi: done.request_cpi().unwrap_or(0.0),
                });
                paths[local].next_leg += 1;
                if paths[local].next_leg < paths[local].legs.len() {
                    let to = paths[local].machines[paths[local].next_leg];
                    send(
                        local,
                        i,
                        to,
                        done.finished_at.get(),
                        &mut paths,
                        &mut transfers,
                        &mut links,
                        &mut departures,
                    );
                } else if i == 0 {
                    // Final leg ran on the frontend: the client sees the
                    // completion directly, no response hop.
                    resolved += 1;
                    collector.record(TraceEvent::RequestEnd {
                        ts: done.finished_at,
                        rid,
                    });
                } else {
                    // Response hop back to the frontend.
                    send(
                        local,
                        i,
                        0,
                        done.finished_at.get(),
                        &mut paths,
                        &mut transfers,
                        &mut links,
                        &mut departures,
                    );
                }
            }
            for lost in failed {
                // Unreachable in v1: External arrivals exclude every
                // failure source. Kept total so an engine change cannot
                // silently strand a request.
                let Some((local, _)) = inflight.remove(&(i, lost.id)) else {
                    continue;
                };
                resolved += 1;
                collector.record(TraceEvent::RequestFailed {
                    ts: lost.failed_at,
                    rid: rid_base + local as u64,
                    reason: lost.reason.label().to_string(),
                });
            }
        }
    }

    let (mut summary, records) = collector.into_parts();
    summary.invariants.check_request_conservation(
        offered as u64,
        summary.completed,
        summary.failed,
    );
    summary
        .invariants
        .check_hop_accounting(departures, deliveries);
    let machine_stats = machines
        .into_iter()
        .map(|m| m.finish().stats)
        .collect::<Vec<_>>();
    Ok(ShardOutput {
        summary,
        records,
        machines: machine_stats,
    })
}

/// Runs one single-topology shard: the machine self-spawns open-loop
/// arrivals through [`machine_loop_run`], and tier attribution is
/// synthesized from the run result (one leg, zero hops, so the
/// partition invariant degenerates to `wait + service == latency ==
/// client-visible`).
fn run_single_shard(
    spec: &ClusterSpec,
    mean_service: f64,
    shard_seed_value: u64,
    n: usize,
    rid_base: u64,
    threshold: Option<f64>,
    retain: bool,
) -> Result<ShardOutput, RbvError> {
    let cfg = single_machine_config(spec, mean_service, shard_seed_value, threshold);
    let mut factory = factory_for(spec.app, shard_seed_value, scale_of(spec.app));
    let result = machine_loop_run(cfg, factory.as_mut(), n)?;
    let mut collector = if retain {
        TierSpanCollector::retaining()
    } else {
        TierSpanCollector::new()
    };
    for done in &result.completed {
        let rid = rid_base + done.id as u64;
        collector.record(TraceEvent::RequestBegin {
            ts: done.arrived_at,
            rid,
            app: done.app.to_string(),
            class: done.class.to_string(),
        });
        let residence = done.finished_at.get() - done.arrived_at.get();
        let service = (done.cpu_cycles().round() as u64).min(residence);
        collector.record(TraceEvent::TierLeg {
            ts: done.finished_at,
            rid,
            machine: 0,
            tier: "standalone".to_string(),
            leg: 0,
            arrived: done.arrived_at,
            wait_cycles: residence - service,
            service_cycles: service,
            cpi: done.request_cpi().unwrap_or(0.0),
        });
        collector.record(TraceEvent::RequestEnd {
            ts: done.finished_at,
            rid,
        });
    }
    for lost in &result.failed {
        let rid = rid_base + lost.id as u64;
        collector.record(TraceEvent::RequestBegin {
            ts: lost.arrived_at,
            rid,
            app: lost.app.to_string(),
            class: lost.class.to_string(),
        });
        collector.record(TraceEvent::RequestFailed {
            ts: lost.failed_at,
            rid,
            reason: lost.reason.label().to_string(),
        });
    }
    let offered = (result.completed.len() + result.failed.len()) as u64;
    let (mut summary, records) = collector.into_parts();
    summary
        .invariants
        .check_request_conservation(offered, summary.completed, summary.failed);
    summary.invariants.check_hop_accounting(0, 0);
    Ok(ShardOutput {
        summary,
        records,
        machines: vec![result.stats],
    })
}

/// Runs one shard of the plan, including the easing calibration pass
/// when the spec arms easing (stock pass derives per-machine
/// thresholds; the eased pass produces the digest — shards stay
/// self-contained, the warehouse idiom).
fn run_shard(
    spec: &ClusterSpec,
    mean_service: f64,
    index: usize,
    n: usize,
    rid_base: u64,
) -> Result<ShardOutput, RbvError> {
    let seed = shard_seed(spec.seed, index);
    match spec.topology {
        ClusterTopology::Single => {
            let threshold = if spec.easing {
                let stock = single_machine_config(spec, mean_service, seed, None);
                let mut factory = factory_for(spec.app, seed, scale_of(spec.app));
                let result = machine_loop_run(stock, factory.as_mut(), n)?;
                let mut samples = Vec::new();
                for done in &result.completed {
                    collect_mpi(done, &mut samples);
                }
                Some(easing_threshold(&samples))
            } else {
                None
            };
            run_single_shard(
                spec,
                mean_service,
                seed,
                n,
                rid_base,
                threshold,
                spec.trace_spans,
            )
        }
        ClusterTopology::ThreeTier => {
            let thresholds = if spec.easing {
                let mut mpi: Vec<Vec<f64>> = Vec::new();
                run_tier_shard(
                    spec,
                    mean_service,
                    ShardJob { seed, n, rid_base },
                    None,
                    false,
                    Some(&mut mpi),
                )?;
                Some(
                    mpi.iter()
                        .map(|samples| easing_threshold(samples))
                        .collect::<Vec<_>>(),
                )
            } else {
                None
            };
            run_tier_shard(
                spec,
                mean_service,
                ShardJob { seed, n, rid_base },
                thresholds.as_deref(),
                spec.trace_spans,
                None,
            )
        }
    }
}

/// The merged outcome of a cluster run: the cross-tier attribution
/// summary, per-machine engine totals, and (optionally) retained span
/// records for Perfetto export.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// The spec that produced this report.
    pub spec: ClusterSpec,
    /// Shards in the plan.
    pub shards: u64,
    /// Probed mean per-request service cycles (the load yardstick).
    pub mean_service_cycles: f64,
    /// Merged cross-tier attribution (tiers, network, client-visible
    /// latency, invariants, top-k).
    pub summary: TierSummary,
    /// Per-machine engine totals across shards, machine-index order.
    pub machines: Vec<MachineTotals>,
    /// Retained span records (empty unless the spec traced spans),
    /// shard-stamped, sorted by `(shard, rid)`.
    pub spans: Vec<ClusterSpanRecord>,
    /// Wall-clock duration, seconds; `None` keeps the ledger a pure
    /// function of the spec.
    pub wall_seconds: Option<f64>,
}

impl ClusterReport {
    /// Whether the run drained cleanly: every offered request resolved,
    /// nothing unfinished, zero invariant violations.
    pub fn clean(&self) -> bool {
        self.summary.invariants.violations() == 0
            && self.summary.unfinished == 0
            && self.summary.completed + self.summary.failed == self.spec.requests as u64
    }

    /// Machine labels for [`rbv_trace::cluster_to_perfetto`].
    pub fn machine_labels(&self) -> Vec<(u32, String)> {
        self.machines
            .iter()
            .map(|m| (m.machine, m.tier.clone()))
            .collect()
    }

    /// Serializes the `rbv-cluster/v1` ledger. Key order is fixed and
    /// wall-clock fields are segregated under `"profile"` (absent unless
    /// recorded), so the document is byte-identical at any thread count.
    pub fn to_json(&self) -> Json {
        let num = Json::Num;
        let mut members = vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("app".into(), Json::str(self.spec.app.to_string())),
            ("seed".into(), num(self.spec.seed as f64)),
            ("requests".into(), num(self.spec.requests as f64)),
            ("overload".into(), num(self.spec.overload)),
            ("topology".into(), Json::str(self.spec.topology.label())),
            ("easing".into(), Json::Bool(self.spec.easing)),
            ("shards".into(), num(self.shards as f64)),
            ("mean_service_cycles".into(), num(self.mean_service_cycles)),
            (
                "network".into(),
                Json::Obj(vec![
                    (
                        "base_latency_cycles".into(),
                        num(self.spec.network.base_latency_cycles as f64),
                    ),
                    (
                        "cycles_per_byte".into(),
                        num(self.spec.network.cycles_per_byte as f64),
                    ),
                ]),
            ),
            (
                "machines".into(),
                Json::Arr(
                    self.machines
                        .iter()
                        .map(|m| {
                            Json::Obj(vec![
                                ("machine".into(), num(f64::from(m.machine))),
                                ("tier".into(), Json::str(m.tier.clone())),
                                ("engine_events".into(), num(m.engine_events as f64)),
                                ("context_switches".into(), num(m.context_switches as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("trace".into(), self.summary.to_json()),
        ];
        if let Some(wall) = self.wall_seconds {
            members.push((
                "profile".into(),
                Json::Obj(vec![
                    ("wall_seconds".into(), num(wall)),
                    (
                        "sim_requests_per_wall_second".into(),
                        num(if wall > 0.0 {
                            self.spec.requests as f64 / wall
                        } else {
                            0.0
                        }),
                    ),
                ]),
            ));
        }
        Json::Obj(members)
    }

    /// Human-readable per-tier attribution table (the `repro cluster`
    /// stderr report).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let q = |s: &rbv_telemetry::QuantileSketch, q: f64| s.quantile(q).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "cluster {} · {} · {} requests · {:.2}x load · seed {}{}",
            self.spec.topology.label(),
            self.spec.app,
            self.spec.requests,
            self.spec.overload,
            self.spec.seed,
            if self.spec.easing { " · easing" } else { "" },
        );
        let _ = writeln!(
            out,
            "  resolved: {} completed, {} failed ({} shards)",
            self.summary.completed, self.summary.failed, self.shards
        );
        let _ = writeln!(
            out,
            "  {:<10} {:>6} {:>12} {:>12} {:>12} {:>8}",
            "tier", "legs", "wait p99 µs", "svc p99 µs", "leg p99 µs", "cpi p50"
        );
        for tier in &self.summary.tiers {
            let _ = writeln!(
                out,
                "  {:<10} {:>6} {:>12.1} {:>12.1} {:>12.1} {:>8.2}",
                tier.tier,
                tier.legs,
                q(&tier.wait_us, 0.99),
                q(&tier.service_us, 0.99),
                q(&tier.leg_us, 0.99),
                q(&tier.cpi, 0.5),
            );
        }
        let _ = writeln!(
            out,
            "  network: {} hops, {} B total, hop p50/p99 {:.1}/{:.1} µs",
            self.summary.hops,
            self.summary.hop_bytes,
            q(&self.summary.hop_us, 0.5),
            q(&self.summary.hop_us, 0.99),
        );
        let _ = writeln!(
            out,
            "  client-visible p50/p99: {:.1}/{:.1} µs",
            q(&self.summary.client_visible_us, 0.5),
            q(&self.summary.client_visible_us, 0.99),
        );
        let _ = writeln!(
            out,
            "  invariants: {} checks, {} violations",
            self.summary.invariants.checks(),
            self.summary.invariants.violations(),
        );
        if let Some(detail) = self.summary.invariants.first_violation() {
            let _ = writeln!(out, "  FIRST VIOLATION: {detail}");
        }
        out
    }
}

/// Runs the full cluster campaign: probe capacity, fan the fixed shard
/// plan over `pool`, and merge digests in shard order.
///
/// # Example
///
/// ```
/// use rbv_cluster::{run_cluster, ClusterSpec};
/// use rbv_workloads::AppId;
///
/// let mut spec = ClusterSpec::three_tier(AppId::Tpcc);
/// spec.requests = 12;
/// let report = run_cluster(&spec, &rbv_par::Pool::serial()).unwrap();
/// assert_eq!(report.summary.completed, 12);
/// // Every request's tier legs + network hops exactly partitioned its
/// // client-visible latency.
/// assert!(report.clean());
/// ```
///
/// # Errors
///
/// Propagates [`RbvError`] from validation, the probe, or any shard
/// (first shard in plan order wins, deterministically).
pub fn run_cluster(spec: &ClusterSpec, pool: &rbv_par::Pool) -> Result<ClusterReport, RbvError> {
    spec.validate()?;
    let started = spec.wallclock.then(std::time::Instant::now);
    let mean_service = probe_mean_service(spec.app, spec.seed)?;
    let plan = shard_plan(spec.requests);
    let mut tasks: Vec<(usize, usize, u64)> = Vec::with_capacity(plan.len());
    let mut base = 0u64;
    for (i, &n) in plan.iter().enumerate() {
        tasks.push((i, n, base));
        base += n as u64;
    }
    let outputs = pool.ordered_map(&tasks, |&(i, n, rid_base)| {
        run_shard(spec, mean_service, i, n, rid_base)
    });
    let mut summary = TierSummary::default();
    let mut machines: Vec<MachineTotals> = spec
        .topology
        .tiers()
        .iter()
        .enumerate()
        .map(|(i, tier)| MachineTotals {
            machine: i as u32,
            tier: (*tier).to_string(),
            ..MachineTotals::default()
        })
        .collect();
    let mut spans = Vec::new();
    for (shard, output) in outputs.into_iter().enumerate() {
        let mut output = output?;
        output.summary.set_shard(shard as u32);
        summary.merge(&output.summary);
        for (machine, stats) in machines.iter_mut().zip(&output.machines) {
            machine.absorb(stats);
        }
        for mut record in output.records {
            record.shard = shard as u32;
            spans.push(record);
        }
    }
    // Backfill tier labels for machines no leg ever landed on, so the
    // ledger always names the full topology.
    {
        let tiers = spec.topology.tiers();
        if summary.tiers.len() < tiers.len() {
            summary
                .tiers
                .resize_with(tiers.len(), rbv_trace::TierStats::default);
        }
        for (i, stats) in summary.tiers.iter_mut().enumerate() {
            if stats.tier.is_empty() {
                stats.machine = i as u32;
                if let Some(label) = tiers.get(i) {
                    stats.tier = (*label).to_string();
                }
            }
        }
    }
    Ok(ClusterReport {
        spec: *spec,
        shards: plan.len() as u64,
        mean_service_cycles: mean_service,
        summary,
        machines,
        spans,
        wall_seconds: started.map(|t| t.elapsed().as_secs_f64()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbv_par::Pool;

    fn small_spec(app: AppId, topology: ClusterTopology) -> ClusterSpec {
        ClusterSpec {
            app,
            requests: 40,
            overload: 1.0,
            seed: 7,
            easing: false,
            topology,
            network: NetworkModel::lan(),
            trace_spans: false,
            wallclock: false,
        }
    }

    #[test]
    fn validate_rejects_nonsense() {
        let mut spec = small_spec(AppId::Tpcc, ClusterTopology::ThreeTier);
        spec.requests = 0;
        assert!(spec.validate().is_err());
        let mut spec = small_spec(AppId::Tpcc, ClusterTopology::ThreeTier);
        spec.overload = 0.0;
        assert!(spec.validate().is_err());
        let mut spec = small_spec(AppId::Tpcc, ClusterTopology::ThreeTier);
        spec.network = NetworkModel {
            base_latency_cycles: 0,
            cycles_per_byte: 0,
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn split_legs_merges_consecutive_stages() {
        let mut factory = factory_for(AppId::Rubis, 3, 1.0);
        for _ in 0..32 {
            let request = factory.next_request();
            let path = split_legs(&request, ClusterTopology::ThreeTier);
            assert_eq!(path.legs.len(), path.machines.len());
            assert!(!path.legs.is_empty());
            // Legs alternate machines: no two consecutive legs share one.
            for pair in path.machines.windows(2) {
                assert_ne!(pair[0], pair[1]);
            }
            // Stages are conserved across the split.
            let total: usize = path.legs.iter().map(|l| l.stages.len()).sum();
            assert_eq!(total, request.stages.len());
        }
    }

    #[test]
    fn three_tier_tpcc_partitions_latency_exactly() {
        let spec = small_spec(AppId::Tpcc, ClusterTopology::ThreeTier);
        let report = run_cluster(&spec, &Pool::serial()).expect("cluster run");
        assert!(report.clean(), "{:?}", report.summary.invariants);
        assert_eq!(report.summary.completed, 40);
        assert_eq!(report.summary.failed, 0);
        // TPC-C stages run on the database: every request crosses the
        // network twice (ingress + response).
        assert_eq!(report.summary.hops, 80);
        let db = &report.summary.tiers[2];
        assert_eq!(db.legs, 40);
        assert!(report.summary.invariants.checks() > 0);
    }

    #[test]
    fn web_stays_on_the_frontend() {
        let spec = small_spec(AppId::WebServer, ClusterTopology::ThreeTier);
        let report = run_cluster(&spec, &Pool::serial()).expect("cluster run");
        assert!(report.clean());
        assert_eq!(report.summary.hops, 0);
        assert_eq!(report.summary.tiers[0].legs, 40);
    }

    #[test]
    fn rubis_crosses_all_three_tiers() {
        let spec = small_spec(AppId::Rubis, ClusterTopology::ThreeTier);
        let report = run_cluster(&spec, &Pool::serial()).expect("cluster run");
        assert!(report.clean(), "{:?}", report.summary.invariants);
        assert!(report.summary.tiers.iter().all(|t| t.legs > 0));
        assert!(report.summary.hops >= 3 * 40);
    }

    #[test]
    fn ledger_is_thread_count_invariant() {
        let mut spec = small_spec(AppId::Tpcc, ClusterTopology::ThreeTier);
        spec.requests = 60;
        let serial = run_cluster(&spec, &Pool::serial()).expect("serial");
        let threaded = run_cluster(&spec, &Pool::new(4)).expect("threaded");
        assert_eq!(
            serial.to_json().to_string_compact(),
            threaded.to_json().to_string_compact()
        );
    }

    #[test]
    fn easing_runs_and_stays_clean() {
        let mut spec = small_spec(AppId::Tpcc, ClusterTopology::ThreeTier);
        spec.easing = true;
        let report = run_cluster(&spec, &Pool::serial()).expect("eased run");
        assert!(report.clean(), "{:?}", report.summary.invariants);
    }

    #[test]
    fn retained_spans_feed_perfetto() {
        let mut spec = small_spec(AppId::Tpcc, ClusterTopology::ThreeTier);
        spec.trace_spans = true;
        let report = run_cluster(&spec, &Pool::serial()).expect("traced run");
        assert_eq!(report.spans.len(), 40);
        let trace = rbv_trace::cluster_to_perfetto(&report.spans, &report.machine_labels());
        assert!(!trace.to_json_string().is_empty());
    }

    #[test]
    fn single_topology_reports_one_machine() {
        let spec = small_spec(AppId::Tpcc, ClusterTopology::Single);
        let report = run_cluster(&spec, &Pool::serial()).expect("single run");
        assert!(report.clean());
        assert_eq!(report.machines.len(), 1);
        assert_eq!(report.summary.hops, 0);
        assert_eq!(report.summary.tiers[0].tier, "standalone");
    }

    #[test]
    fn profile_member_is_opt_in() {
        let spec = small_spec(AppId::Tpcc, ClusterTopology::Single);
        let report = run_cluster(&spec, &Pool::serial()).expect("run");
        assert!(report.to_json().get("profile").is_none());
        let mut spec = spec;
        spec.wallclock = true;
        let report = run_cluster(&spec, &Pool::serial()).expect("run");
        assert!(report.to_json().get("profile").is_some());
    }

    #[test]
    fn shard_plan_is_a_pure_function_of_count() {
        assert_eq!(shard_plan(1), vec![1]);
        assert_eq!(shard_plan(SHARD_TARGET), vec![SHARD_TARGET]);
        let plan = shard_plan(SHARD_TARGET * 3 + 5);
        assert_eq!(plan.iter().sum::<usize>(), SHARD_TARGET * 3 + 5);
        assert_eq!(plan.len(), 4);
        let huge = shard_plan(SHARD_TARGET * MAX_SHARDS * 2);
        assert_eq!(huge.len(), MAX_SHARDS);
    }
}
