//! Results of a simulation run: completed requests with their serialized
//! counter timelines, sampling statistics, transition-signal training data,
//! and contention accounting.

use rbv_core::series::{Metric, MetricSeries, Timeline};
use rbv_sim::Cycles;
use rbv_workloads::{AppId, RequestClass, SyscallName};

/// One system call occurrence on a request's execution timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyscallRecord {
    /// Wall-clock simulation time of the call.
    pub at: Cycles,
    /// Request-local CPU cycles consumed before the call.
    pub request_cycles: f64,
    /// Request-local instructions retired before the call.
    pub request_ins: f64,
    /// Which call.
    pub name: SyscallName,
}

/// A finished request with everything the modeling layer needs.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedRequest {
    /// Engine-assigned identifier (arrival order).
    pub id: usize,
    /// Application.
    pub app: AppId,
    /// Application-level class.
    pub class: RequestClass,
    /// Serialized per-request counter timeline (§2.1).
    pub timeline: Timeline,
    /// System calls in execution order.
    pub syscalls: Vec<SyscallRecord>,
    /// Arrival time.
    pub arrived_at: Cycles,
    /// Completion time.
    pub finished_at: Cycles,
    /// Cumulative `(instructions, cycles)` at the end of each stage, in
    /// stage order — the per-component split a distributed deployment
    /// exposes (§7 "local and inter-machine variations").
    pub stage_marks: Vec<(f64, f64)>,
}

impl CompletedRequest {
    /// Total CPU cycles consumed (the "request CPU time" of Figure 7A).
    pub fn cpu_cycles(&self) -> f64 {
        self.timeline.total_cycles()
    }

    /// Whole-request CPI (total cycles / total instructions, Figure 1).
    pub fn request_cpi(&self) -> Option<f64> {
        self.timeline.average(Metric::Cpi)
    }

    /// The 90-percentile CPI across the request's sample periods (the
    /// "peak CPI" property of Figure 7B), answered from the same
    /// mergeable sketch the run ledger records.
    pub fn peak_cpi(&self) -> Option<f64> {
        let (_, values) = self.timeline.weighted_values(Metric::Cpi);
        rbv_telemetry::QuantileSketch::of(values).quantile(0.9)
    }

    /// Fixed-bucket variation pattern on `metric` (§4.1 signatures).
    pub fn series(&self, metric: Metric, bucket_ins: f64) -> MetricSeries {
        self.timeline.series(metric, bucket_ins)
    }

    /// The syscall name sequence (for Levenshtein differencing).
    pub fn syscall_names(&self) -> Vec<SyscallName> {
        self.syscalls.iter().map(|s| s.name).collect()
    }

    /// End-to-end latency including queueing, in cycles.
    pub fn latency(&self) -> Cycles {
        self.finished_at.saturating_sub(self.arrived_at)
    }

    /// Per-stage CPI values, split at the recorded stage marks.
    /// Single-stage requests yield one value (the request CPI).
    pub fn stage_cpis(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.stage_marks.len());
        let (mut prev_ins, mut prev_cycles) = (0.0, 0.0);
        for &(ins, cycles) in &self.stage_marks {
            let d_ins = ins - prev_ins;
            let d_cycles = cycles - prev_cycles;
            if d_ins > 0.0 {
                out.push(d_cycles / d_ins);
            }
            prev_ins = ins;
            prev_cycles = cycles;
        }
        out
    }
}

/// Why a request failed instead of completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// Admission control rejected the request on every retry (load shed).
    AdmissionShed,
    /// The request exceeded its deadline and was aborted mid-execution.
    DeadlineAbort,
    /// The client timed out on every resubmission and gave up
    /// ([`crate::ClientPolicy`]).
    ClientTimeout,
    /// CoDel-style dequeue-time shedding dropped the request after its
    /// queue sojourn stayed over target for a full control interval
    /// ([`crate::ShedPolicy`]).
    CodelShed,
    /// The guard ladder's brownout rung deterministically rejected the
    /// arrival before admission.
    BrownoutReject,
}

impl FailReason {
    /// Stable lower-case label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            FailReason::AdmissionShed => "shed",
            FailReason::DeadlineAbort => "deadline",
            FailReason::ClientTimeout => "timeout",
            FailReason::CodelShed => "codel",
            FailReason::BrownoutReject => "brownout",
        }
    }
}

/// A request the overload-protection machinery turned away or aborted.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedRequest {
    /// Engine-assigned identifier (arrival order).
    pub id: usize,
    /// Application.
    pub app: AppId,
    /// Application-level class.
    pub class: RequestClass,
    /// Arrival time.
    pub arrived_at: Cycles,
    /// Shed or abort time.
    pub failed_at: Cycles,
    /// What happened.
    pub reason: FailReason,
}

/// A behavior-transition training record (§3.2, Table 2): the CPI of the
/// sample periods immediately before and after one system call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionRecord {
    /// The system call at the boundary.
    pub name: SyscallName,
    /// The request's previous system call, if any (for bigram signals).
    pub prev_name: Option<SyscallName>,
    /// CPI of the period ending at the call.
    pub before_cpi: f64,
    /// CPI of the period starting at the call.
    pub after_cpi: f64,
}

impl TransitionRecord {
    /// The CPI change the call signals.
    pub fn change(&self) -> f64 {
        self.after_cpi - self.before_cpi
    }
}

/// Energy/thermal accounting of a powered run ([`crate::SimConfig::power`]).
///
/// Energy is carried as the exact fixed-point accumulators (µW·cycles in
/// `u128`) rather than floating-point joules: integer addition is
/// order-free, so shard merges produce byte-identical totals at any thread
/// count. Convert with [`rbv_power::joules`] only at the reporting edge.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EnergyStats {
    /// Per-core dissipated energy in µW·cycles.
    pub core_uw_cycles: Vec<u128>,
    /// Machine-wide total in µW·cycles; the energy-conservation invariant
    /// requires this to equal the per-core sum exactly.
    pub total_uw_cycles: u128,
    /// Firmware throttle engagements across all cores.
    pub throttle_engages: u64,
    /// Firmware throttle releases across all cores.
    pub throttle_releases: u64,
    /// Cores still throttled when the run ended (the throttle-conservation
    /// invariant is `engages == releases + throttled_final`).
    pub throttled_final: u64,
    /// DVFS transition edges across all cores (throttle clamps and guard
    /// frequency caps included).
    pub dvfs_transitions: u64,
    /// Hottest temperature any core reached, milli-°C.
    pub max_temp_milli_c: i64,
    /// Per-core temperature when the run ended, milli-°C.
    pub final_temp_milli_c: Vec<i64>,
    /// Power-capping ladder transitions (0 without a guard power ladder).
    pub power_rung_transitions: u64,
    /// Power-capping rung in effect when the run ended, as
    /// [`rbv_guard::PowerRung::index`] (0 = nominal).
    pub power_final_rung: u64,
}

impl EnergyStats {
    /// Machine-wide dissipated energy in joules (reporting only; the
    /// exact quantity is [`EnergyStats::total_uw_cycles`]).
    pub fn total_joules(&self) -> f64 {
        rbv_power::joules(self.total_uw_cycles)
    }
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunStats {
    /// Counter samples taken in an in-kernel context (context switches and
    /// system call entrances).
    pub samples_inkernel: u64,
    /// Counter samples taken at (periodic or backup) interrupts.
    pub samples_interrupt: u64,
    /// Counter samples by sampling hook, indexed by
    /// [`crate::observer::SampleMode::index`] — the fine-grained split the
    /// observer-effect accountant prices (sums to `samples_inkernel +
    /// samples_interrupt`).
    pub samples_by_mode: [u64; 4],
    /// Simulated cycles during which exactly `k` cores simultaneously ran
    /// requests in high-resource-usage periods (index `k`; Figure 12).
    pub high_usage_cycles: Vec<f64>,
    /// Cycles during which at least one core was running.
    pub busy_cycles: f64,
    /// Involuntary context switches (quantum rotations, stage handoffs,
    /// and contention-easing displacements).
    pub context_switches: u64,
    /// Cross-core runqueue migrations performed by work stealing.
    pub migrations: u64,
    /// Contention-easing displacement decisions actually taken (a subset
    /// of `context_switches`).
    pub resched_decisions: u64,
    /// Discrete events the simulation engine processed.
    pub engine_events: u64,
    /// Sampling interrupts dropped by injected measurement faults.
    pub samples_lost: u64,
    /// Samples collected but flagged low-confidence (lost-interrupt
    /// stretch or detected counter overflow) and excluded from predictor
    /// training and transition records.
    pub samples_low_confidence: u64,
    /// Detected counter overflows (the L2 counters were zeroed for the
    /// affected period instead of reporting wrapped values).
    pub counter_overflows: u64,
    /// Injected syscall-sampling starvation windows the backup interrupt
    /// timer had to cover.
    pub starvation_windows: u64,
    /// Admission-control rejections (a request bounced off a full
    /// runqueue; one request may be rejected several times).
    pub admission_rejections: u64,
    /// Admission retries the closed-loop client scheduled (with
    /// exponential backoff plus jitter).
    pub admission_retries: u64,
    /// Requests permanently shed after exhausting admission retries.
    pub load_shed: u64,
    /// Requests aborted at their deadline.
    pub deadline_aborts: u64,
    /// Client-side timeout expirations (every firing, terminal or not).
    pub client_timeouts: u64,
    /// Client resubmissions after a timeout (capped exponential backoff).
    pub client_retries: u64,
    /// Requests shed by the CoDel-style dequeue controller.
    pub codel_shed: u64,
    /// Arrivals the guard ladder's brownout rung rejected outright.
    pub brownout_rejections: u64,
    /// CPU cycles consumed by attempts the client later abandoned —
    /// the wasted work that makes retry storms metastable.
    pub wasted_cycles: f64,
    /// Scheduling decisions where the prediction-confidence gate held
    /// contention easing back and stock scheduling ran instead.
    pub easing_gate_fallbacks: u64,
    /// Guard accounting windows the sampling governor closed (0 when the
    /// run was ungoverned).
    pub governor_windows: u64,
    /// Multiplicative backoffs the governor applied on budget breaches.
    pub governor_backoffs: u64,
    /// Additive recovery steps the governor applied under budget.
    pub governor_recoveries: u64,
    /// Accounting windows whose compensated observer overhead exceeded
    /// the do-no-harm budget.
    pub governor_budget_breaches: u64,
    /// Longest run of consecutive over-budget windows (the do-no-harm
    /// guarantee allows at most one: the AIMD correction lag).
    pub governor_max_breach_streak: u64,
    /// Sampling-interval scale in effect when the run ended (1.0 = full
    /// rate; 0.0 = ungoverned run).
    pub governor_final_scale: f64,
    /// Cumulative priced observer overhead across governed windows as a
    /// fraction of their busy cycles (0.0 when ungoverned).
    pub governor_overhead_frac: f64,
    /// One-window slack: the costliest single window's sampling cycles
    /// as a fraction of all busy cycles. The do-no-harm contract is
    /// `governor_overhead_frac <= budget + governor_slack_frac`.
    pub governor_slack_frac: f64,
    /// Measurement-health ladder transitions (degradations + recoveries).
    pub health_transitions: u64,
    /// Ladder rung in effect when the run ended, as
    /// [`rbv_guard::LadderRung::index`] (0 = easing, 2 = stock,
    /// 4 = brownout).
    pub health_final_rung: u64,
    /// Runtime invariant checks performed.
    pub invariant_checks: u64,
    /// Runtime invariant violations, indexed by
    /// [`rbv_guard::InvariantKind::index`].
    pub invariant_violations: [u64; rbv_guard::InvariantKind::ALL.len()],
    /// Energy/thermal accounting; `None` for power-off runs, keeping
    /// their stats (and every downstream ledger) bit-identical to
    /// power-unaware builds.
    pub energy: Option<EnergyStats>,
}

impl RunStats {
    /// Fraction of (any-core-busy) execution time with at least `k` cores
    /// simultaneously at high resource usage (Figure 12's y-axis).
    pub fn high_usage_fraction_at_least(&self, k: usize) -> f64 {
        if self.busy_cycles <= 0.0 {
            return 0.0;
        }
        let sum: f64 = self.high_usage_cycles.iter().skip(k).sum();
        sum / self.busy_cycles
    }

    /// Total sampling overhead in cycles, costing each sample at the
    /// Mbench-Spin (minimum) rate per Figure 5's methodology.
    pub fn sampling_overhead_cycles(&self) -> f64 {
        use crate::observer::{spin_baseline, SamplingContext};
        self.samples_inkernel as f64 * spin_baseline(SamplingContext::InKernel).cycles
            + self.samples_interrupt as f64 * spin_baseline(SamplingContext::Interrupt).cycles
    }
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Requests in completion order.
    pub completed: Vec<CompletedRequest>,
    /// Requests shed or aborted by overload protection, in failure order.
    /// Empty unless an [`crate::OverloadPolicy`] is configured.
    pub failed: Vec<FailedRequest>,
    /// Transition-signal training records.
    pub transitions: Vec<TransitionRecord>,
    /// Aggregate statistics.
    pub stats: RunStats,
    /// Total simulated time.
    pub total_time: Cycles,
}

impl RunResult {
    /// Per-request CPI values (skipping degenerate requests).
    pub fn request_cpis(&self) -> Vec<f64> {
        self.completed
            .iter()
            .filter_map(CompletedRequest::request_cpi)
            .collect()
    }

    /// Requests of one class.
    pub fn of_class(&self, class: RequestClass) -> Vec<&CompletedRequest> {
        self.completed.iter().filter(|r| r.class == class).collect()
    }

    /// Mergeable digest of end-to-end request latencies, in microseconds
    /// on the 3 GHz platform.
    pub fn latency_sketch(&self) -> rbv_telemetry::QuantileSketch {
        rbv_telemetry::QuantileSketch::of(
            self.completed
                .iter()
                .map(|r| r.latency().as_f64() / 3_000.0),
        )
    }

    /// Mergeable digest of whole-request CPIs.
    pub fn cpi_sketch(&self) -> rbv_telemetry::QuantileSketch {
        rbv_telemetry::QuantileSketch::of(self.request_cpis())
    }

    /// Mergeable digest of per-request L2 misses per kilo-instruction.
    pub fn l2_mpki_sketch(&self) -> rbv_telemetry::QuantileSketch {
        rbv_telemetry::QuantileSketch::of(self.completed.iter().filter_map(|r| {
            let totals = r.timeline.totals();
            (totals.instructions > 0.0).then(|| totals.l2_misses / totals.instructions * 1_000.0)
        }))
    }

    /// Mean ± standard deviation of the CPI change signaled by each
    /// syscall name, sorted by descending |mean| (Table 2). Names with
    /// fewer than `min_count` occurrences are dropped.
    pub fn transition_table(&self, min_count: usize) -> Vec<(SyscallName, f64, f64, usize)> {
        use std::collections::HashMap;
        let mut by_name: HashMap<SyscallName, Vec<f64>> = HashMap::new();
        for t in &self.transitions {
            by_name.entry(t.name).or_default().push(t.change());
        }
        let mut rows: Vec<(SyscallName, f64, f64, usize)> = by_name
            .into_iter()
            .filter(|(_, v)| v.len() >= min_count)
            .map(|(name, v)| {
                let n = v.len();
                let mean = v.iter().sum::<f64>() / n as f64;
                let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
                (name, mean, var.sqrt(), n)
            })
            .collect();
        rows.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then_with(|| a.0.cmp(&b.0)));
        rows
    }

    /// Like [`RunResult::transition_table`] but keyed on `(previous,
    /// current)` syscall-name bigrams — the paper's suggested refinement
    /// for long requests whose individual names recur in many semantic
    /// contexts.
    #[allow(clippy::type_complexity)]
    pub fn transition_table_bigrams(
        &self,
        min_count: usize,
    ) -> Vec<((SyscallName, SyscallName), f64, f64, usize)> {
        use std::collections::HashMap;
        let mut by_pair: HashMap<(SyscallName, SyscallName), Vec<f64>> = HashMap::new();
        for t in &self.transitions {
            if let Some(prev) = t.prev_name {
                by_pair.entry((prev, t.name)).or_default().push(t.change());
            }
        }
        let mut rows: Vec<((SyscallName, SyscallName), f64, f64, usize)> = by_pair
            .into_iter()
            .filter(|(_, v)| v.len() >= min_count)
            .map(|(pair, v)| {
                let n = v.len();
                let mean = v.iter().sum::<f64>() / n as f64;
                let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
                (pair, mean, var.sqrt(), n)
            })
            .collect();
        rows.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then_with(|| a.0.cmp(&b.0)));
        rows
    }

    /// Per-request "next syscall distance" samples, length-biased as in
    /// Figure 4: from an arbitrary instant of request execution, how far
    /// (in request CPU cycles or instructions) is the next system call?
    /// Returns the gap list (each gap weighted by sampling within it is
    /// handled by the CDF evaluation in the harness).
    pub fn syscall_gaps(&self) -> Vec<SyscallGap> {
        let mut gaps = Vec::new();
        for r in &self.completed {
            let mut prev_cycles = 0.0f64;
            let mut prev_ins = 0.0f64;
            for s in &r.syscalls {
                let dc = s.request_cycles - prev_cycles;
                let di = s.request_ins - prev_ins;
                if dc > 0.0 || di > 0.0 {
                    gaps.push(SyscallGap {
                        cycles: dc.max(0.0),
                        instructions: di.max(0.0),
                    });
                }
                prev_cycles = s.request_cycles;
                prev_ins = s.request_ins;
            }
        }
        gaps
    }

    /// Populates `registry` with the run's aggregate metrics: run totals,
    /// engine and scheduler counters, the sampling/observer-effect budget
    /// (Figure 5's costing), and per-request latency/CPI histograms.
    pub fn fill_metrics(&self, registry: &mut rbv_telemetry::MetricsRegistry) {
        use crate::observer::{spin_baseline, SamplingContext};

        let stats = &self.stats;
        registry.count("run.requests_completed", self.completed.len() as u64);
        registry.gauge("run.total_time_cycles", self.total_time.as_f64());
        registry.count("run.transition_records", self.transitions.len() as u64);

        registry.count("engine.events", stats.engine_events);
        registry.count("scheduler.context_switches", stats.context_switches);
        registry.count("scheduler.migrations", stats.migrations);
        registry.count("scheduler.resched_decisions", stats.resched_decisions);
        registry.gauge("scheduler.busy_cycles", stats.busy_cycles);
        registry.gauge(
            "scheduler.high_usage_frac_ge2",
            stats.high_usage_fraction_at_least(2),
        );
        registry.gauge(
            "scheduler.high_usage_frac_ge3",
            stats.high_usage_fraction_at_least(3),
        );

        registry.count("sampling.inkernel", stats.samples_inkernel);
        registry.count("sampling.interrupt", stats.samples_interrupt);
        for mode in crate::observer::SampleMode::ALL {
            registry.count(
                &format!("sampling.mode.{}", mode.label()),
                stats.samples_by_mode[mode.index()],
            );
        }
        registry.count("sampling.lost", stats.samples_lost);
        registry.count("sampling.low_confidence", stats.samples_low_confidence);
        registry.count("sampling.counter_overflows", stats.counter_overflows);
        registry.count("sampling.starvation_windows", stats.starvation_windows);

        registry.count("overload.requests_failed", self.failed.len() as u64);
        registry.count("overload.admission_rejections", stats.admission_rejections);
        registry.count("overload.admission_retries", stats.admission_retries);
        registry.count("overload.load_shed", stats.load_shed);
        registry.count("overload.deadline_aborts", stats.deadline_aborts);
        registry.count("overload.client_timeouts", stats.client_timeouts);
        registry.count("overload.client_retries", stats.client_retries);
        registry.count("overload.codel_shed", stats.codel_shed);
        registry.count("overload.brownout_rejections", stats.brownout_rejections);
        registry.gauge("overload.wasted_cycles", stats.wasted_cycles);
        registry.count(
            "scheduler.easing_gate_fallbacks",
            stats.easing_gate_fallbacks,
        );

        // Observer-effect budget: what the measurement apparatus itself
        // cost, priced at the Mbench-Spin floor per sampling context.
        let report = crate::accountant::ObserverReport::account(stats);
        registry.gauge("observer.overhead_cycles", report.total_cycles);
        if stats.busy_cycles > 0.0 {
            registry.gauge("observer.overhead_frac_of_busy", report.overhead_frac());
        }
        registry.gauge("observer.budget_frac", report.budget_frac);
        registry.gauge("observer.slack_frac", report.slack_frac());
        for m in &report.per_mode {
            registry.gauge(&format!("observer.cycles.{}", m.mode.label()), m.cycles);
        }
        registry.gauge(
            "observer.cycles_per_inkernel_sample",
            spin_baseline(SamplingContext::InKernel).cycles,
        );
        registry.gauge(
            "observer.cycles_per_interrupt_sample",
            spin_baseline(SamplingContext::Interrupt).cycles,
        );

        // Guard family: governor control-loop activity, health-ladder
        // movement, and invariant-monitor verdicts. Emitted (as zeros)
        // even for ungoverned runs so ledger diffs see a stable key set.
        registry.count("guard.governor_windows", stats.governor_windows);
        registry.count("guard.governor_backoffs", stats.governor_backoffs);
        registry.count("guard.governor_recoveries", stats.governor_recoveries);
        registry.count("guard.budget_breaches", stats.governor_budget_breaches);
        registry.gauge(
            "guard.max_breach_streak",
            stats.governor_max_breach_streak as f64,
        );
        registry.gauge("guard.final_scale", stats.governor_final_scale);
        registry.gauge("guard.overhead_frac", stats.governor_overhead_frac);
        registry.gauge("guard.slack_frac", stats.governor_slack_frac);
        registry.count("guard.health_transitions", stats.health_transitions);
        registry.gauge("guard.final_rung", stats.health_final_rung as f64);
        registry.count("guard.invariant_checks", stats.invariant_checks);
        registry.count(
            "guard.invariant_violations",
            stats.invariant_violations.iter().sum(),
        );
        for kind in rbv_guard::InvariantKind::ALL {
            registry.count(
                &format!("guard.invariant.{}", kind.label()),
                stats.invariant_violations[kind.index()],
            );
        }

        // Energy family: only for powered runs — absent keys keep
        // power-off ledgers byte-identical to power-unaware builds.
        if let Some(energy) = &stats.energy {
            registry.gauge("energy.total_joules", energy.total_joules());
            for (c, &uw_cycles) in energy.core_uw_cycles.iter().enumerate() {
                registry.gauge(
                    &format!("energy.core{c}_joules"),
                    rbv_power::joules(uw_cycles),
                );
            }
            registry.count("energy.throttle_engages", energy.throttle_engages);
            registry.count("energy.throttle_releases", energy.throttle_releases);
            registry.count("energy.throttled_final", energy.throttled_final);
            registry.count("energy.dvfs_transitions", energy.dvfs_transitions);
            registry.gauge("energy.max_temp_milli_c", energy.max_temp_milli_c as f64);
            registry.count(
                "energy.power_rung_transitions",
                energy.power_rung_transitions,
            );
            registry.gauge("energy.power_final_rung", energy.power_final_rung as f64);
        }

        for r in &self.completed {
            registry.observe("request.latency_cycles", r.latency().as_f64());
            registry.observe("request.cpu_cycles", r.cpu_cycles());
            registry.observe("request.syscalls", r.syscalls.len() as f64);
            if let Some(cpi) = r.request_cpi() {
                // Histogram buckets are log2; scale CPI (~0.5–10) so
                // adjacent values land in distinct buckets.
                registry.observe("request.cpi_x1000", cpi * 1000.0);
            }
        }
    }
}

/// The execution distance between two consecutive system calls of one
/// request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyscallGap {
    /// Request CPU cycles between the calls.
    pub cycles: f64,
    /// Instructions between the calls.
    pub instructions: f64,
}

/// Length-biased cumulative probability that the next syscall is within
/// distance `d` from an arbitrary instant (Figure 4): instants fall into a
/// gap with probability proportional to the gap's length, and within a gap
/// of length `g` the next call is within `d` for the last `min(d, g)`
/// portion.
pub fn next_syscall_cumulative(gaps: &[f64], d: f64) -> f64 {
    let total: f64 = gaps.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    gaps.iter().map(|&g| g.min(d)).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbv_core::series::SamplePeriod;

    fn request_with_timeline(periods: Vec<(f64, f64)>) -> CompletedRequest {
        let mut t = Timeline::new();
        for (cycles, ins) in periods {
            t.push(SamplePeriod {
                cycles,
                instructions: ins,
                l2_refs: ins * 0.01,
                l2_misses: ins * 0.001,
            });
        }
        CompletedRequest {
            id: 0,
            app: AppId::Tpcc,
            class: RequestClass::Mbench,
            timeline: t,
            syscalls: vec![],
            arrived_at: Cycles::ZERO,
            finished_at: Cycles::new(1000),
            stage_marks: vec![],
        }
    }

    #[test]
    fn request_cpi_is_totals_ratio() {
        let r = request_with_timeline(vec![(100.0, 100.0), (300.0, 100.0)]);
        assert!((r.request_cpi().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(r.cpu_cycles(), 400.0);
        assert_eq!(r.latency(), Cycles::new(1000));
    }

    #[test]
    fn peak_cpi_is_90th_percentile_of_periods() {
        let r = request_with_timeline(vec![
            (100.0, 100.0),
            (100.0, 100.0),
            (100.0, 100.0),
            (500.0, 100.0),
        ]);
        let peak = r.peak_cpi().unwrap();
        assert!(peak > 3.0, "peak {peak}");
    }

    #[test]
    fn transition_table_aggregates_by_name() {
        let result = RunResult {
            completed: vec![],
            failed: vec![],
            transitions: vec![
                TransitionRecord {
                    name: SyscallName::Writev,
                    prev_name: Some(SyscallName::Stat),
                    before_cpi: 1.0,
                    after_cpi: 4.0,
                },
                TransitionRecord {
                    name: SyscallName::Writev,
                    prev_name: Some(SyscallName::Stat),
                    before_cpi: 1.0,
                    after_cpi: 6.0,
                },
                TransitionRecord {
                    name: SyscallName::Lseek,
                    prev_name: Some(SyscallName::Writev),
                    before_cpi: 4.0,
                    after_cpi: 1.0,
                },
                TransitionRecord {
                    name: SyscallName::Read,
                    prev_name: None,
                    before_cpi: 1.0,
                    after_cpi: 1.0,
                },
            ],
            stats: RunStats::default(),
            total_time: Cycles::ZERO,
        };
        let table = result.transition_table(1);
        // writev first (mean +4), then lseek (mean -3), then read (0).
        assert_eq!(table[0].0, SyscallName::Writev);
        assert!((table[0].1 - 4.0).abs() < 1e-12);
        assert!((table[0].2 - 1.0).abs() < 1e-12); // std of {3, 5}
        assert_eq!(table[0].3, 2);
        assert_eq!(table[1].0, SyscallName::Lseek);
        assert!((table[1].1 + 3.0).abs() < 1e-12);
        // min_count filters singles.
        let filtered = result.transition_table(2);
        assert_eq!(filtered.len(), 1);
    }

    #[test]
    fn high_usage_fractions() {
        let stats = RunStats {
            high_usage_cycles: vec![50.0, 20.0, 20.0, 5.0, 5.0],
            busy_cycles: 100.0,
            ..RunStats::default()
        };
        assert!((stats.high_usage_fraction_at_least(0) - 1.0).abs() < 1e-12);
        assert!((stats.high_usage_fraction_at_least(2) - 0.3).abs() < 1e-12);
        assert!((stats.high_usage_fraction_at_least(4) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn sampling_overhead_prices_by_context() {
        let a = RunStats {
            samples_inkernel: 10,
            samples_interrupt: 0,
            ..Default::default()
        };
        let b = RunStats {
            samples_inkernel: 0,
            samples_interrupt: 10,
            ..Default::default()
        };
        assert!(b.sampling_overhead_cycles() > a.sampling_overhead_cycles());
    }

    #[test]
    fn next_syscall_cumulative_is_length_biased() {
        // Gaps 1 and 9: from an arbitrary instant, P(next within 1) =
        // (1 + 1)/10 = 0.2.
        let gaps = [1.0, 9.0];
        assert!((next_syscall_cumulative(&gaps, 1.0) - 0.2).abs() < 1e-12);
        assert!((next_syscall_cumulative(&gaps, 9.0) - 1.0).abs() < 1e-12);
        assert_eq!(next_syscall_cumulative(&[], 5.0), 0.0);
    }

    #[test]
    fn syscall_gaps_computed_per_request() {
        let mut r = request_with_timeline(vec![(100.0, 100.0)]);
        r.syscalls = vec![
            SyscallRecord {
                at: Cycles::new(10),
                request_cycles: 10.0,
                request_ins: 5.0,
                name: SyscallName::Read,
            },
            SyscallRecord {
                at: Cycles::new(50),
                request_cycles: 40.0,
                request_ins: 25.0,
                name: SyscallName::Write,
            },
        ];
        let result = RunResult {
            completed: vec![r],
            failed: vec![],
            transitions: vec![],
            stats: RunStats::default(),
            total_time: Cycles::ZERO,
        };
        let gaps = result.syscall_gaps();
        assert_eq!(gaps.len(), 2);
        assert_eq!(gaps[1].cycles, 30.0);
        assert_eq!(gaps[1].instructions, 20.0);
    }
}

#[cfg(test)]
mod bigram_tests {
    use super::*;

    fn rec(prev: Option<SyscallName>, name: SyscallName, delta: f64) -> TransitionRecord {
        TransitionRecord {
            name,
            prev_name: prev,
            before_cpi: 1.0,
            after_cpi: 1.0 + delta,
        }
    }

    #[test]
    fn bigram_table_disambiguates_contexts() {
        // `sendto` after `futex` raises CPI; after `read` it lowers it.
        // The name table averages them away; the bigram table separates.
        let result = RunResult {
            completed: vec![],
            failed: vec![],
            transitions: vec![
                rec(Some(SyscallName::Futex), SyscallName::Sendto, 2.0),
                rec(Some(SyscallName::Futex), SyscallName::Sendto, 2.2),
                rec(Some(SyscallName::Read), SyscallName::Sendto, -2.0),
                rec(Some(SyscallName::Read), SyscallName::Sendto, -2.2),
                rec(None, SyscallName::Sendto, 0.0),
            ],
            stats: RunStats::default(),
            total_time: Cycles::ZERO,
        };
        let names = result.transition_table(1);
        let sendto = names.iter().find(|r| r.0 == SyscallName::Sendto).unwrap();
        assert!(sendto.1.abs() < 0.1, "name mean washes out: {}", sendto.1);
        assert!(sendto.2 > 1.5, "name std reveals mixed contexts");

        let bigrams = result.transition_table_bigrams(1);
        assert_eq!(bigrams.len(), 2, "the None-prev record is excluded");
        let futex = bigrams
            .iter()
            .find(|r| r.0 == (SyscallName::Futex, SyscallName::Sendto))
            .unwrap();
        assert!((futex.1 - 2.1).abs() < 1e-9);
        assert!(futex.2 < 0.2, "per-context std is tight");
        let read = bigrams
            .iter()
            .find(|r| r.0 == (SyscallName::Read, SyscallName::Sendto))
            .unwrap();
        assert!((read.1 + 2.1).abs() < 1e-9);
    }

    #[test]
    fn bigram_min_count_filters() {
        let result = RunResult {
            completed: vec![],
            failed: vec![],
            transitions: vec![
                rec(Some(SyscallName::Stat), SyscallName::Writev, 3.0),
                rec(Some(SyscallName::Stat), SyscallName::Writev, 3.5),
                rec(Some(SyscallName::Open), SyscallName::Writev, 1.0),
            ],
            stats: RunStats::default(),
            total_time: Cycles::ZERO,
        };
        assert_eq!(result.transition_table_bigrams(2).len(), 1);
        assert_eq!(result.transition_table_bigrams(1).len(), 2);
    }
}
