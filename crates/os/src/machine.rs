//! The event-driven execution engine: a simulated 4-core server machine.
//!
//! Requests from a [`RequestFactory`] execute on per-core runqueues under
//! a configurable scheduler, while hardware counters advance according to
//! the analytical contention model of `rbv-mem` — re-evaluated whenever the
//! set of co-running execution phases changes. The kernel instrumentation
//! of §2.1/§3 is modeled faithfully:
//!
//! * counters are sampled at every request context switch (attribution),
//!   at periodic interrupts, and/or at system call entrances per the
//!   configured [`SamplingPolicy`];
//! * each sample injects its observer-effect events into the counter
//!   stream and "do no harm" compensation subtracts the Mbench-Spin
//!   minimum at collection time (§3.1);
//! * request contexts propagate across server components (stage hops over
//!   socket IPC), and each request's sample periods are serialized into a
//!   continuous timeline;
//! * the contention-easing scheduler (§5.2) re-evaluates placement every
//!   few milliseconds using per-request vaEWMA predictions of L2 misses
//!   per instruction.
//!
//! Between events every core's progress is linear in cycles (rates change
//! only at events), so lazily advancing all cores at each event timestamp
//! is exact, not an approximation.
//!
//! One deliberate approximation: the observer-effect events injected by
//! each sample are charged to the request's *counters* but do not consume
//! wall-clock time (stretching time at every sample would break the exact
//! linear advancement above). At the paper's sampling periods the residue
//! after "do no harm" compensation is well under 1% of cycles; only
//! pathological microsecond-scale sampling makes it visible (see
//! `tests/stress.rs`).

// The engine's `expect`s assert cross-structure scheduling invariants
// (a running rid always indexes a live request, a checked Option is
// re-read one line later, and so on). A violated invariant is a
// simulator bug where continuing would silently corrupt results;
// panicking with the invariant named is the designed failure mode, so
// these sites are exempt from the crate-wide `expect_used` ban.
#![allow(clippy::expect_used)]

use std::collections::VecDeque;

use rbv_core::predict::{Predictor, VaEwma};
use rbv_core::series::{Metric, SamplePeriod, Timeline};
use rbv_guard::{
    Governor, GovernorAction, GovernorPolicy, HealthLadder, InvariantMonitor, LadderRung,
    PowerLadder, WindowSample,
};
use rbv_mem::{PerfEstimate, SegmentProfile};
use rbv_power::{CorePower, PowerPolicy, ThermalFaults};
use rbv_sim::{Cycles, EventQueue, SimRng};
use rbv_telemetry::{SampleOrigin, SwitchReason, TraceEvent, TraceSink};
use rbv_workloads::{Request, RequestFactory, Stage, SyscallName};

use crate::config::{ArrivalProcess, QueueDiscipline, SamplingPolicy, SchedulerPolicy, SimConfig};
use crate::error::RbvError;
use crate::observer::{injected_cost, pollution_of, spin_baseline, SampleMode, SamplingContext};
use crate::result::{
    CompletedRequest, EnergyStats, FailReason, FailedRequest, RunResult, RunStats, SyscallRecord,
    TransitionRecord,
};

/// Runs `n_requests` from `factory` under `cfg` and returns everything the
/// modeling layer needs.
///
/// # Errors
///
/// Returns [`RbvError::Config`] if `cfg` is invalid.
pub fn run_simulation(
    cfg: SimConfig,
    factory: &mut dyn RequestFactory,
    n_requests: usize,
) -> Result<RunResult, RbvError> {
    cfg.validate()?;
    let mut engine = Engine::new(cfg, n_requests, None);
    Ok(engine.run(factory))
}

/// Like [`run_simulation`], but streams structured [`TraceEvent`]s into
/// `sink` as the simulated kernel acts.
///
/// Tracing is observation-only: event emission reads engine state but
/// never mutates it (and draws nothing from the random streams), so a
/// traced run returns results bit-identical to an untraced one with the
/// same configuration.
///
/// # Errors
///
/// Returns [`RbvError::Config`] if `cfg` is invalid.
pub fn run_simulation_traced(
    cfg: SimConfig,
    factory: &mut dyn RequestFactory,
    n_requests: usize,
    sink: &mut dyn TraceSink,
) -> Result<RunResult, RbvError> {
    cfg.validate()?;
    let mut engine = Engine::new(cfg, n_requests, Some(sink));
    let result = engine.run(factory);
    drop(engine);
    sink.finish();
    Ok(result)
}

/// Streaming consumer of finished requests for bounded-memory runs: the
/// engine hands each completion or failure over exactly once, in event
/// order, and then drops it instead of retaining it in the result
/// vectors. Memory stays proportional to the number of *live* requests
/// regardless of run length.
pub trait CompletionSink {
    /// One request completed end to end.
    fn on_complete(&mut self, request: &CompletedRequest);
    /// One request was shed, timed out, or aborted.
    fn on_fail(&mut self, request: &FailedRequest);
}

/// Like [`run_simulation`], but folds every finished request into
/// `completions` instead of retaining it, so memory stays bounded by the
/// live-request population. The returned [`RunResult`] carries empty
/// `completed`/`failed` vectors alongside the full statistics.
///
/// Streaming is observation-only bookkeeping: the engine's event
/// schedule and random streams are untouched, so the statistics are
/// bit-identical to a retaining run of the same configuration.
///
/// # Errors
///
/// Returns [`RbvError::Config`] if `cfg` is invalid.
pub fn run_simulation_streaming(
    cfg: SimConfig,
    factory: &mut dyn RequestFactory,
    n_requests: usize,
    completions: &mut dyn CompletionSink,
) -> Result<RunResult, RbvError> {
    cfg.validate()?;
    let mut engine = Engine::new(cfg, n_requests, None);
    engine.completions = Some(completions);
    Ok(engine.run(factory))
}

/// Combines [`run_simulation_streaming`] and [`run_simulation_traced`]:
/// finished requests fold into `completions` while structured
/// [`TraceEvent`]s stream into `sink`, both in event order. With a
/// streaming trace consumer (one that folds events instead of retaining
/// them) memory stays proportional to the live-request population — the
/// discipline span reconstruction relies on.
///
/// Both observers are observation-only, so the statistics and completion
/// stream are bit-identical to [`run_simulation_streaming`] with the same
/// configuration.
///
/// # Errors
///
/// Returns [`RbvError::Config`] if `cfg` is invalid.
pub fn run_simulation_streaming_traced(
    cfg: SimConfig,
    factory: &mut dyn RequestFactory,
    n_requests: usize,
    completions: &mut dyn CompletionSink,
    sink: &mut dyn TraceSink,
) -> Result<RunResult, RbvError> {
    cfg.validate()?;
    let mut engine = Engine::new(cfg, n_requests, Some(sink));
    engine.completions = Some(completions);
    let result = engine.run(factory);
    drop(engine);
    sink.finish();
    Ok(result)
}

/// A single simulated machine exposed to an external event loop.
///
/// [`run_simulation`] drives the engine to completion in one call; a
/// `Machine` instead surfaces the same engine one event at a time so a
/// cluster scheduler (`rbv-cluster`) can interleave several machines on
/// one global clock and hand requests across them. [`Machine::start`]
/// plus repeated [`Machine::step`] is *structurally* the loop
/// [`run_simulation`] runs, so a lone machine reproduces it bit for bit;
/// under [`ArrivalProcess::External`] the machine spawns nothing itself
/// and every request enters through [`Machine::inject`].
///
/// # Example
///
/// ```
/// use rbv_os::{Machine, SimConfig};
/// use rbv_workloads::{RequestFactory, Tpcc};
///
/// let mut factory = Tpcc::new(42, 0.05);
/// let mut machine = Machine::new(SimConfig::paper_default(), 3).expect("valid configuration");
/// machine.start(&mut factory);
/// while !machine.target_reached() && machine.step(&mut factory) {}
/// let result = machine.finish();
/// assert_eq!(result.completed.len(), 3);
/// ```
pub struct Machine {
    engine: Engine<'static>,
}

impl Machine {
    /// Builds a machine that will resolve `target` requests (spawned
    /// by the machine itself under closed-loop or open-loop arrivals;
    /// irrelevant under [`ArrivalProcess::External`], where the owner
    /// decides when the cluster is done).
    ///
    /// # Errors
    ///
    /// Returns [`RbvError::Config`] if `cfg` is invalid.
    pub fn new(cfg: SimConfig, target: usize) -> Result<Machine, RbvError> {
        cfg.validate()?;
        Ok(Machine {
            engine: Engine::new(cfg, target, None),
        })
    }

    /// Seeds the event queue: initial spawns (or the first open-loop
    /// arrival) and the first guard tick. Call exactly once, before the
    /// first [`Machine::step`].
    pub fn start(&mut self, factory: &mut dyn RequestFactory) {
        self.engine.start(factory);
    }

    /// Pops and handles exactly one engine event. Returns `false` when
    /// the machine's queue is empty (idle until the next injection).
    pub fn step(&mut self, factory: &mut dyn RequestFactory) -> bool {
        self.engine.step(factory)
    }

    /// The machine's local clock: the timestamp of the last handled
    /// event.
    pub fn now(&self) -> Cycles {
        self.engine.queue.now()
    }

    /// Timestamp of the machine's earliest pending event, or `None` when
    /// idle. A cluster loop compares these across machines (and against
    /// in-flight network deliveries) to pick the globally next event.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.engine.queue.peek_time()
    }

    /// Whether the machine has resolved (completed or failed) its
    /// configured target of self-spawned requests.
    pub fn target_reached(&self) -> bool {
        self.engine.n_completed + self.engine.n_failed >= self.engine.target
    }

    /// Requests resolved so far (completed plus failed).
    pub fn resolved(&self) -> usize {
        self.engine.n_completed + self.engine.n_failed
    }

    /// Hands the machine a request arriving over the network at absolute
    /// time `at` (clamped to the machine's clock; the cluster's global
    /// ordering guarantees `at` is never in the machine's past). Returns
    /// the machine-local request id, which tags the eventual
    /// [`CompletedRequest`] from [`Machine::drain_finished`].
    ///
    /// Injected requests take the same path as an inter-machine stage
    /// hop: a `HopWakeup` event delivery straight into a runqueue —
    /// admission control is the ingress machine's business, not the
    /// receiving tier's.
    pub fn inject(&mut self, request: Request, at: Cycles) -> usize {
        debug_assert!(request.validate().is_ok());
        let engine = &mut self.engine;
        let at = at.max(engine.queue.now());
        let id = engine.live.len();
        engine.generated += 1;
        let alpha = match &engine.cfg.scheduler {
            SchedulerPolicy::ContentionEasing { alpha, .. } => *alpha,
            SchedulerPolicy::Stock => 0.6,
        };
        engine.live.push(Some(LiveRequest {
            id,
            request,
            stage_idx: 0,
            ins_in_stage: 0.0,
            phase_idx: 0,
            next_syscall: 0,
            timeline: Timeline::new(),
            accum: SamplePeriod::default(),
            accum_injection: None,
            cum_cycles: 0.0,
            cum_ins: 0.0,
            syscalls: Vec::new(),
            arrived_at: at,
            predictor: VaEwma::new(alpha, PREDICTOR_UNIT),
            pending_transition: None,
            last_syscall: None,
            stage_marks: Vec::new(),
            noise_rng: engine.rng.fork_labeled(id as u64),
            attempt: 0,
            queued_at: at,
        }));
        engine.queue.schedule(at, Event::HopWakeup { rid: id });
        id
    }

    /// Takes every request resolved since the last drain, in resolution
    /// order. The cluster correlates the machine-local ids back to its
    /// global request identities.
    pub fn drain_finished(&mut self) -> (Vec<CompletedRequest>, Vec<FailedRequest>) {
        (
            std::mem::take(&mut self.engine.completed),
            std::mem::take(&mut self.engine.failed),
        )
    }

    /// Closes the run (final guard window or debug invariant sweep,
    /// power finalization) and returns the machine's [`RunResult`].
    pub fn finish(mut self) -> RunResult {
        self.engine.finish_run()
    }
}

/// Sub-instruction tolerance when matching instruction boundaries.
const INS_EPS: f64 = 0.5;

/// SplitMix64 finalizer: the stateless hash behind RSS steering, brownout
/// selection, and client retry jitter. Hash-derived decisions consume no
/// RNG stream, so runs with those features disabled stay bit-identical to
/// builds that predate them.
fn hash_mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Standard normal draw (Box–Muller) from the deterministic stream.
fn gaussian(rng: &mut SimRng) -> f64 {
    use rand::Rng;
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}
/// vaEWMA unit observation length t̂: 1 ms, as in §5.1.
const PREDICTOR_UNIT: f64 = 1.0;

#[derive(Debug, Clone, Copy)]
enum Event {
    /// The running task reaches its next instruction boundary (phase end,
    /// syscall, or stage end).
    Milestone { core: usize, epoch: u64 },
    /// Scheduling quantum expiry.
    Quantum { core: usize, epoch: u64 },
    /// Periodic or backup sampling interrupt.
    SampleTimer { core: usize, epoch: u64 },
    /// Contention-easing re-scheduling opportunity.
    Resched { core: usize, epoch: u64 },
    /// Open-loop request arrival.
    Arrival,
    /// A request finishes its inter-machine network hop and becomes
    /// runnable on the destination machine.
    HopWakeup { rid: usize },
    /// The closed-loop client retries admission after backoff (overload
    /// protection). `gen` is the client attempt generation at scheduling
    /// time: a retry armed before a client timeout reset the request is
    /// stale and must not re-admit it.
    Retry { rid: usize, attempt: u32, gen: u32 },
    /// End-to-end deadline expiry check for a request.
    DeadlineCheck { rid: usize },
    /// The client's patience for attempt `gen` of a request runs out.
    ClientTimeout { rid: usize, gen: u32 },
    /// The client resubmits a timed-out request after backoff.
    ClientResubmit { rid: usize, gen: u32 },
    /// Guard accounting-window boundary: the governor reads the window's
    /// observer costs, the health ladder rescores, and the invariant
    /// monitor runs its checks. Never scheduled when
    /// [`SimConfig::governor`] is `None`.
    GuardTick,
}

#[derive(Debug, Default)]
struct Core {
    running: Option<usize>,
    milestone_epoch: u64,
    quantum_epoch: u64,
    sample_epoch: u64,
    resched_epoch: u64,
    last_sample: Cycles,
}

#[derive(Debug)]
struct LiveRequest {
    id: usize,
    request: Request,
    stage_idx: usize,
    ins_in_stage: f64,
    phase_idx: usize,
    next_syscall: usize,
    timeline: Timeline,
    accum: SamplePeriod,
    /// Sampling context whose observer events were injected into `accum`.
    accum_injection: Option<SamplingContext>,
    cum_cycles: f64,
    cum_ins: f64,
    syscalls: Vec<SyscallRecord>,
    arrived_at: Cycles,
    predictor: VaEwma,
    pending_transition: Option<(Option<SyscallName>, SyscallName, f64)>,
    last_syscall: Option<SyscallName>,
    stage_marks: Vec<(f64, f64)>,
    noise_rng: SimRng,
    /// Client attempt generation: 0 for the first submission, bumped on
    /// every client-timeout resubmission. Stale timer events carrying an
    /// older generation are ignored.
    attempt: u32,
    /// Instant the request last entered a runqueue (CoDel sojourn base).
    queued_at: Cycles,
}

impl LiveRequest {
    fn stage(&self) -> &Stage {
        &self.request.stages[self.stage_idx]
    }

    fn profile(&self) -> SegmentProfile {
        self.stage().phases[self.phase_idx].profile
    }

    /// Next instruction boundary within the current stage and whether it
    /// is a syscall (syscalls win ties so transition records see the old
    /// phase as "before").
    fn next_boundary(&self) -> (f64, bool) {
        let stage = self.stage();
        let phase_end = stage.phases[self.phase_idx].end_ins.as_f64();
        let syscall_at = stage
            .syscalls
            .get(self.next_syscall)
            .map_or(f64::INFINITY, |s| s.at_ins.as_f64());
        if syscall_at <= phase_end {
            (syscall_at, true)
        } else {
            (phase_end, false)
        }
    }
}

/// Snapshot of the observer-cost counters at the start of the current
/// guard accounting window, plus the guard components themselves. Lives
/// in its own struct so `on_guard_tick` can `take()` it while borrowing
/// the rest of the engine.
struct GuardState {
    policy: GovernorPolicy,
    governor: Governor,
    ladder: HealthLadder,
    monitor: InvariantMonitor,
    /// Power-capping ladder, armed by [`GovernorPolicy::power_cap`]. Only
    /// acts when the engine also has a power model to read pressure from.
    power_ladder: Option<PowerLadder>,
    /// Core parked by the ladder's emergency rung: chosen as the hottest
    /// core at the instant the ladder enters the park rung, and latched
    /// until it leaves (so the choice cannot thrash between cores as
    /// temperatures shift under it).
    parked: Option<usize>,
    /// Start instant of the current accounting window.
    win_start: Cycles,
    base_busy: f64,
    base_sampling: f64,
    base_samples: u64,
    base_lost: u64,
    base_low_conf: u64,
    base_starved: u64,
    base_offered: u64,
    base_rejected: u64,
}

impl GuardState {
    fn new(policy: GovernorPolicy) -> GuardState {
        GuardState {
            governor: Governor::new(&policy),
            ladder: HealthLadder::new(policy.health.clone()),
            monitor: InvariantMonitor::new(),
            power_ladder: policy.power_cap.clone().map(PowerLadder::new),
            parked: None,
            policy,
            win_start: Cycles::ZERO,
            base_busy: 0.0,
            base_sampling: 0.0,
            base_samples: 0,
            base_lost: 0,
            base_low_conf: 0,
            base_starved: 0,
            base_offered: 0,
            base_rejected: 0,
        }
    }
}

/// Per-core DVFS/thermal integration state, present only when
/// [`SimConfig::power`] is set. Everything here is accounted in exact
/// integer arithmetic (`rbv-power`), so powered ledgers stay byte-identical
/// under any shard count.
struct PowerState {
    /// The frequency ladder, power coefficients, and thermal constants.
    policy: PowerPolicy,
    /// The thermal fault plan ([`ThermalFaults::none`] when unfaulted).
    faults: ThermalFaults,
    /// Per-core temperature, throttle latch, and energy accumulator.
    cores: Vec<CorePower>,
    /// Effective P-state in force on each core during the current
    /// accounting slice (firmware throttle already applied).
    slice_pstate: Vec<usize>,
    /// Activity milli-fraction of each core during the current slice
    /// (0 for idle cores: static power only).
    slice_act_milli: Vec<u32>,
    /// Last P-state recorded per core, for DVFS transition edges.
    last_pstate: Vec<usize>,
    /// Running machine-wide energy total; the energy-conservation
    /// invariant requires this to equal the per-core sum *exactly*.
    total_uw_cycles: u128,
    /// DVFS transition edges observed across all cores.
    dvfs_transitions: u64,
    /// Hottest temperature any core reached, milli-°C.
    max_temp_milli_c: i64,
}

struct Engine<'s> {
    cfg: SimConfig,
    queue: EventQueue<Event>,
    cores: Vec<Core>,
    runqueues: Vec<VecDeque<usize>>,
    live: Vec<Option<LiveRequest>>,
    rates: Vec<Option<PerfEstimate>>,
    rates_dirty: bool,
    last_advance: Cycles,
    completed: Vec<CompletedRequest>,
    failed: Vec<FailedRequest>,
    transitions: Vec<TransitionRecord>,
    stats: RunStats,
    target: usize,
    generated: usize,
    rng: SimRng,
    /// Dedicated stream for fault injection and overload-protection
    /// jitter. Nothing is drawn from it when faults are disabled and no
    /// overload policy is set, so fault-free runs stay bit-identical to
    /// builds that predate fault injection.
    fault_rng: SimRng,
    /// Per-core end instants of injected syscall-sampling starvation
    /// windows (`ZERO` = not starved).
    starved_until: Vec<Cycles>,
    /// Per-core reason the next collected sample must be flagged
    /// low-confidence (set by a lost sampling interrupt).
    low_conf: Vec<Option<&'static str>>,
    /// Running mean relative error of vaEWMA predictions (easing gate).
    pred_err: f64,
    pred_err_primed: bool,
    /// Whether the prediction-confidence gate currently suspends easing.
    gate_engaged: bool,
    /// Structured-event sink; `None` costs one branch per emission point.
    sink: Option<&'s mut dyn TraceSink>,
    /// Simultaneous-high-usage core count last reported to the sink.
    trace_high: usize,
    /// Adaptive sampling governor, health ladder, and invariant monitor.
    /// `None` (the default) schedules no guard events and leaves every
    /// sampling interval untouched, keeping ungoverned runs bit-identical
    /// to builds that predate the guard.
    guard: Option<GuardState>,
    /// Sampling-interval multiplier the governor currently commands.
    /// Exactly 1.0 for ungoverned runs; the interval helpers return their
    /// input unchanged in that case.
    sample_scale: f64,
    /// Context switches since the last context-switch sample, for the
    /// governor's per-mode decimation (always 0 while `sample_scale` is
    /// 1.0, so ungoverned runs sample every switch).
    cs_skip: u64,
    /// Streaming completion sink for bounded-memory runs; `None` retains
    /// finished requests in the result vectors.
    completions: Option<&'s mut dyn CompletionSink>,
    /// Completion/failure counts — identical to the result vector lengths
    /// when not streaming, and the only record of them when streaming.
    n_completed: usize,
    n_failed: usize,
    /// MMPP arrival modulation: whether the process is currently in its
    /// burst state, and when the current dwell ends (`ZERO` = the first
    /// dwell has not been drawn yet).
    mmpp_burst: bool,
    mmpp_until: Cycles,
    /// Per-queue instant since when dequeued sojourns have continuously
    /// exceeded the CoDel target (`None` = last sojourn was below it).
    codel_above: Vec<Option<Cycles>>,
    /// DVFS/power/thermal integration state; `None` (the default) skips
    /// every power branch and keeps runs bit-identical to power-unaware
    /// builds.
    power: Option<PowerState>,
}

impl<'s> Engine<'s> {
    fn new(cfg: SimConfig, target: usize, sink: Option<&'s mut dyn TraceSink>) -> Engine<'s> {
        let cores = cfg.machine.topology.cores;
        let seed = cfg.seed;
        let guard = cfg.governor.clone().map(GuardState::new);
        let power = cfg.power.clone().map(|policy| PowerState {
            faults: cfg
                .thermal_faults
                .unwrap_or_else(|| ThermalFaults::none(seed)),
            cores: (0..cores).map(|_| CorePower::new(&policy)).collect(),
            slice_pstate: vec![0; cores],
            slice_act_milli: vec![0; cores],
            last_pstate: vec![0; cores],
            total_uw_cycles: 0,
            dvfs_transitions: 0,
            max_temp_milli_c: policy.ambient_milli_c,
            policy,
        });
        Engine {
            cfg,
            queue: EventQueue::new(),
            cores: (0..cores).map(|_| Core::default()).collect(),
            runqueues: (0..cores).map(|_| VecDeque::new()).collect(),
            live: Vec::new(),
            rates: vec![None; cores],
            rates_dirty: false,
            last_advance: Cycles::ZERO,
            completed: Vec::new(),
            failed: Vec::new(),
            transitions: Vec::new(),
            stats: RunStats {
                high_usage_cycles: vec![0.0; cores + 1],
                ..RunStats::default()
            },
            target,
            generated: 0,
            rng: SimRng::seed_from(seed ^ 0x0515_e0e0),
            fault_rng: SimRng::seed_from(seed ^ 0xfa17_0b5e),
            starved_until: vec![Cycles::ZERO; cores],
            low_conf: vec![None; cores],
            pred_err: 0.0,
            pred_err_primed: false,
            gate_engaged: false,
            sink,
            trace_high: 0,
            guard,
            sample_scale: 1.0,
            cs_skip: 0,
            completions: None,
            n_completed: 0,
            n_failed: 0,
            mmpp_burst: false,
            mmpp_until: Cycles::ZERO,
            codel_above: vec![None; cores],
            power,
        }
    }

    fn run(&mut self, factory: &mut dyn RequestFactory) -> RunResult {
        self.start(factory);
        while self.n_completed + self.n_failed < self.target {
            if !self.step(factory) {
                break; // no runnable work left (target > generated would be a bug)
            }
        }
        self.finish_run()
    }

    /// Seeds the event queue: initial spawns (or the first open-loop
    /// arrival) and the first guard tick. Externally driven machines
    /// start empty — their owner injects every request.
    fn start(&mut self, factory: &mut dyn RequestFactory) {
        match self.cfg.arrivals {
            ArrivalProcess::ClosedLoop => {
                let initial = self.cfg.concurrency.min(self.target);
                for _ in 0..initial {
                    self.spawn(factory);
                }
            }
            ArrivalProcess::OpenPoisson { .. } | ArrivalProcess::OpenMmpp { .. } => {
                // First arrival at t = 0; subsequent ones self-schedule.
                self.spawn(factory);
                self.schedule_next_arrival();
            }
            ArrivalProcess::External => {}
        }
        self.flush_rates();
        if let Some(guard) = &self.guard {
            self.queue
                .schedule_after(guard.policy.window, Event::GuardTick);
        }
    }

    /// Pops and handles exactly one event. Returns `false` when the
    /// queue is empty (nothing left to do).
    fn step(&mut self, factory: &mut dyn RequestFactory) -> bool {
        {
            let Some((now, event)) = self.queue.pop() else {
                return false;
            };
            self.stats.engine_events += 1;
            self.advance_all(now);
            match event {
                Event::Milestone { core, epoch } => {
                    if self.cores[core].milestone_epoch == epoch {
                        self.on_milestone(core, now, factory);
                    }
                }
                Event::Quantum { core, epoch } => {
                    if self.cores[core].quantum_epoch == epoch {
                        self.on_quantum(core, now);
                    }
                }
                Event::SampleTimer { core, epoch } => {
                    if self.cores[core].sample_epoch == epoch {
                        self.on_sample_timer(core, now);
                    }
                }
                Event::Resched { core, epoch } => {
                    if self.cores[core].resched_epoch == epoch {
                        self.on_resched(core, now);
                    }
                }
                Event::Arrival => {
                    self.spawn(factory);
                    self.schedule_next_arrival();
                }
                Event::HopWakeup { rid } => {
                    // The request may have been deadline-aborted mid-hop.
                    if self.live[rid].is_some() {
                        self.enqueue_runnable(rid);
                    }
                }
                Event::Retry { rid, attempt, gen } => {
                    // Stale once the client timed the attempt out and
                    // resubmitted: the resubmission owns admission now.
                    if self.live[rid].as_ref().is_some_and(|lr| lr.attempt == gen) {
                        self.try_admit(rid, attempt, factory);
                    }
                }
                Event::DeadlineCheck { rid } => {
                    if self.live[rid].is_some() {
                        self.fail_request(rid, now, FailReason::DeadlineAbort, factory);
                    }
                }
                Event::ClientTimeout { rid, gen } => {
                    if self.live[rid].as_ref().is_some_and(|lr| lr.attempt == gen) {
                        self.on_client_timeout(rid, now, factory);
                    }
                }
                Event::ClientResubmit { rid, gen } => {
                    if self.live[rid].as_ref().is_some_and(|lr| lr.attempt == gen) {
                        self.on_client_resubmit(rid, factory);
                    }
                }
                Event::GuardTick => self.on_guard_tick(now, true),
            }
            self.flush_rates();
        }
        true
    }

    /// Closes the run and takes the accumulated [`RunResult`].
    fn finish_run(&mut self) -> RunResult {
        // Close the final (partial) guard window so short runs still get
        // at least one governed observation, then fold the guard verdicts
        // into the run statistics.
        if self.guard.is_some() {
            self.on_guard_tick(self.queue.now(), false);
            self.finalize_guard_stats();
        } else if cfg!(debug_assertions) {
            self.debug_invariant_sweep();
        }
        self.finalize_power_stats();

        RunResult {
            completed: std::mem::take(&mut self.completed),
            failed: std::mem::take(&mut self.failed),
            transitions: std::mem::take(&mut self.transitions),
            stats: std::mem::replace(
                &mut self.stats,
                RunStats {
                    high_usage_cycles: vec![],
                    ..RunStats::default()
                },
            ),
            total_time: self.queue.now(),
        }
    }

    // ----- workload entry -------------------------------------------------

    fn spawn(&mut self, factory: &mut dyn RequestFactory) {
        if self.generated >= self.target {
            return;
        }
        let request = factory.next_request();
        debug_assert!(request.validate().is_ok());
        let id = self.live.len();
        self.generated += 1;
        let alpha = match &self.cfg.scheduler {
            SchedulerPolicy::ContentionEasing { alpha, .. } => *alpha,
            SchedulerPolicy::Stock => 0.6,
        };
        self.live.push(Some(LiveRequest {
            id,
            request,
            stage_idx: 0,
            ins_in_stage: 0.0,
            phase_idx: 0,
            next_syscall: 0,
            timeline: Timeline::new(),
            accum: SamplePeriod::default(),
            accum_injection: None,
            cum_cycles: 0.0,
            cum_ins: 0.0,
            syscalls: Vec::new(),
            arrived_at: self.queue.now(),
            predictor: VaEwma::new(alpha, PREDICTOR_UNIT),
            pending_transition: None,
            last_syscall: None,
            stage_marks: Vec::new(),
            noise_rng: self.rng.fork_labeled(id as u64),
            attempt: 0,
            queued_at: self.queue.now(),
        }));
        if self.sink.is_some() {
            let lr = self.live[id].as_ref().expect("just pushed");
            let event = TraceEvent::RequestBegin {
                ts: self.queue.now(),
                rid: id as u64,
                app: lr.request.app.to_string(),
                class: lr.request.class.to_string(),
            };
            self.sink
                .as_deref_mut()
                .expect("checked above")
                .record(event);
        }
        // Brownout rung: the guard ladder's deepest defense rejects half
        // of all new arrivals up front. Hash-selected — no stream draws —
        // and open-loop only; config validation guarantees the policies
        // that can reach this rung never combine with closed-loop
        // arrivals, whose respawn-on-failure would recurse here.
        if self.cfg.arrivals.is_open()
            && self
                .guard
                .as_ref()
                .is_some_and(|g| g.policy.ladder && g.ladder.rung() == LadderRung::Brownout)
            && hash_mix(self.cfg.seed ^ 0xb407 ^ (id as u64)) & 1 == 0
        {
            self.fail_request(id, self.queue.now(), FailReason::BrownoutReject, factory);
            return;
        }
        if let Some(client) = self.cfg.client {
            self.queue
                .schedule_after(client.timeout, Event::ClientTimeout { rid: id, gen: 0 });
        }
        if let Some(overload) = self.cfg.overload {
            if let Some(deadline) = overload.deadline {
                self.queue
                    .schedule_after(deadline, Event::DeadlineCheck { rid: id });
            }
            self.try_admit(id, 0, factory);
        } else {
            self.enqueue_runnable(id);
        }
    }

    /// Admission attempt `attempt` for a new request under the overload
    /// policy's bounded runqueues. Rejection schedules a client retry with
    /// exponential backoff plus jitter, or sheds the request for good once
    /// retries are exhausted. Mid-request stage hops and quantum requeues
    /// never pass through here — once admitted, a request finishes (or
    /// hits its deadline).
    fn try_admit(&mut self, rid: usize, attempt: u32, factory: &mut dyn RequestFactory) {
        let Some(overload) = self.cfg.overload else {
            self.enqueue_runnable(rid);
            return;
        };
        // dFCFS checks the RSS-steered core's queue; cFCFS checks the one
        // central queue against the machine-wide bound. The guard ladder's
        // shed rung halves the effective bound, turning excess load away
        // at the door before it can queue.
        let (queue, load, mut bound) = match self.cfg.queue_discipline {
            Some(QueueDiscipline::Cfcfs) => {
                let running = self.cores.iter().filter(|c| c.running.is_some()).count();
                (
                    0,
                    self.runqueues[0].len() + running,
                    overload.max_runqueue.saturating_mul(self.cores.len()),
                )
            }
            Some(QueueDiscipline::Dfcfs) => {
                let c = self.rss_core(rid);
                (
                    c,
                    self.runqueues[c].len() + usize::from(self.cores[c].running.is_some()),
                    overload.max_runqueue,
                )
            }
            None => {
                let c = self.least_loaded_core(rid);
                (
                    c,
                    self.runqueues[c].len() + usize::from(self.cores[c].running.is_some()),
                    overload.max_runqueue,
                )
            }
        };
        if self.shed_rung_active() {
            bound = (bound / 2).max(1);
        }
        if load < bound {
            let now = self.queue.now();
            let gen = {
                let req = self.live[rid].as_mut().expect("admitted request is live");
                req.queued_at = now;
                req.attempt
            };
            self.runqueues[queue].push_back(rid);
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.record(TraceEvent::QueueEnter {
                    ts: now,
                    rid: rid as u64,
                    queue: queue as u32,
                    attempt: gen,
                });
            }
            self.wake_idle_for(queue);
            return;
        }
        let now = self.queue.now();
        self.stats.admission_rejections += 1;
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(TraceEvent::AdmissionRejected {
                ts: now,
                rid: rid as u64,
                core: queue as u32,
                attempt,
            });
        }
        if attempt < overload.max_retries {
            use rand::Rng;
            let jitter: f64 = self.fault_rng.gen();
            let backoff = overload.retry_backoff.as_f64()
                * 2f64.powi(attempt.min(32) as i32)
                * (1.0 + 0.5 * jitter);
            let backoff = Cycles::new(backoff.max(1.0) as u64);
            self.stats.admission_retries += 1;
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.record(TraceEvent::RetryScheduled {
                    ts: now,
                    rid: rid as u64,
                    attempt: attempt + 1,
                    backoff,
                    client: false,
                });
            }
            let gen = self.live[rid]
                .as_ref()
                .expect("rejected request is live")
                .attempt;
            self.queue.schedule_after(
                backoff,
                Event::Retry {
                    rid,
                    attempt: attempt + 1,
                    gen,
                },
            );
        } else {
            self.fail_request(rid, now, FailReason::AdmissionShed, factory);
        }
    }

    /// Sheds or aborts a live request: pulls it off whatever core or queue
    /// holds it, records the failure, and (closed loop) admits the
    /// client's next request.
    fn fail_request(
        &mut self,
        rid: usize,
        now: Cycles,
        reason: FailReason,
        factory: &mut dyn RequestFactory,
    ) {
        for c in 0..self.cores.len() {
            if self.cores[c].running == Some(rid) {
                self.cores[c].running = None;
                self.rates_dirty = true;
                self.stats.context_switches += 1;
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.record(TraceEvent::SliceEnd {
                        ts: now,
                        core: c as u32,
                        rid: rid as u64,
                    });
                }
                self.schedule_next_on(c);
                break;
            }
            if let Some(pos) = self.runqueues[c].iter().position(|&r| r == rid) {
                self.runqueues[c].remove(pos);
                break;
            }
        }
        match reason {
            FailReason::AdmissionShed => self.stats.load_shed += 1,
            FailReason::DeadlineAbort => self.stats.deadline_aborts += 1,
            // Counted where the timeout fires (terminal or not).
            FailReason::ClientTimeout => {}
            FailReason::CodelShed => self.stats.codel_shed += 1,
            FailReason::BrownoutReject => self.stats.brownout_rejections += 1,
        }
        let lr = self.live[rid].take().expect("failed request was live");
        self.stats.wasted_cycles += lr.cum_cycles;
        self.push_failed(FailedRequest {
            id: lr.id,
            app: lr.request.app,
            class: lr.request.class,
            arrived_at: lr.arrived_at,
            failed_at: now,
            reason,
        });
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(TraceEvent::RequestFailed {
                ts: now,
                rid: rid as u64,
                reason: reason.label().into(),
            });
        }
        if self.cfg.arrivals == ArrivalProcess::ClosedLoop {
            self.spawn(factory);
        }
    }

    /// Schedules the next open-loop arrival at an exponential gap. Under
    /// MMPP arrivals the exponential's mean is modulated by a two-state
    /// Markov chain (calm/burst) whose dwell times are themselves
    /// exponential; Poisson arrivals draw exactly one uniform per
    /// arrival, exactly as before, so Poisson runs are bit-identical to
    /// builds that predate MMPP.
    fn schedule_next_arrival(&mut self) {
        if self.generated >= self.target {
            return;
        }
        let mean = match self.cfg.arrivals {
            ArrivalProcess::ClosedLoop | ArrivalProcess::External => return,
            ArrivalProcess::OpenPoisson { mean_interarrival } => mean_interarrival,
            ArrivalProcess::OpenMmpp {
                mean_interarrival,
                burst_mean_interarrival,
                mean_calm_dwell,
                mean_burst_dwell,
            } => {
                let now = self.queue.now();
                if self.mmpp_until.is_zero() {
                    // Lazy init: the first calm dwell is drawn when the
                    // first arrival schedules its successor.
                    self.mmpp_until = now + self.exp_gap(mean_calm_dwell);
                }
                while now >= self.mmpp_until {
                    self.mmpp_burst = !self.mmpp_burst;
                    let dwell = if self.mmpp_burst {
                        mean_burst_dwell
                    } else {
                        mean_calm_dwell
                    };
                    let gap = self.exp_gap(dwell);
                    self.mmpp_until += gap;
                }
                if self.mmpp_burst {
                    burst_mean_interarrival
                } else {
                    mean_interarrival
                }
            }
        };
        let gap = self.exp_gap(mean);
        self.queue.schedule_after(gap, Event::Arrival);
    }

    /// One exponential draw with the given mean from the engine stream,
    /// floored at a single cycle.
    fn exp_gap(&mut self, mean: Cycles) -> Cycles {
        use rand::Rng;
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        Cycles::new((-(mean.as_f64()) * u.ln()).max(1.0) as u64)
    }

    /// Makes a request runnable: picks its queue per the configured
    /// discipline (least-loaded placement by default, RSS steering under
    /// dFCFS, the one central queue under cFCFS) and wakes an idle core.
    fn enqueue_runnable(&mut self, rid: usize) {
        let queue = match self.cfg.queue_discipline {
            None => self.least_loaded_core(rid),
            Some(QueueDiscipline::Dfcfs) => self.rss_core(rid),
            Some(QueueDiscipline::Cfcfs) => 0,
        };
        let now = self.queue.now();
        let gen = {
            let req = self.live[rid].as_mut().expect("enqueued request is live");
            req.queued_at = now;
            req.attempt
        };
        self.runqueues[queue].push_back(rid);
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(TraceEvent::QueueEnter {
                ts: now,
                rid: rid as u64,
                queue: queue as u32,
                attempt: gen,
            });
        }
        self.wake_idle_for(queue);
    }

    /// The core currently parked by the guard's power-capping ladder:
    /// the hottest core at the instant the park rung engaged (latched
    /// until the rung releases), and never the only core. A parked core
    /// receives no new placements, pulls nothing from the cFCFS central
    /// queue, and steals no work — but it drains whatever already sits
    /// in its own queue, so no request is ever stranded. (RSS-pinned
    /// placement ignores parking: the indirection table is fixed.)
    fn parked_core(&self) -> Option<usize> {
        if self.power.is_none() || self.cores.len() <= 1 {
            return None;
        }
        self.guard.as_ref().and_then(|g| {
            g.power_ladder
                .as_ref()
                .filter(|l| l.rung().parks_core())
                .and(g.parked)
        })
    }

    /// Wakes a core that can serve `queue`: under cFCFS any idle core
    /// pulls from the central queue; otherwise the queue is per-core.
    fn wake_idle_for(&mut self, queue: usize) {
        if self.cfg.queue_discipline == Some(QueueDiscipline::Cfcfs) {
            let parked = self.parked_core();
            if let Some(idle) = (0..self.cores.len())
                .find(|&c| self.cores[c].running.is_none() && Some(c) != parked)
            {
                self.schedule_next_on(idle);
            }
        } else if self.cores[queue].running.is_none() {
            self.schedule_next_on(queue);
        }
    }

    /// NIC-style receive-side scaling: a deterministic hash of the
    /// request id indexes a 128-slot indirection table whose slots map
    /// round-robin onto cores, pinning each request to one queue for its
    /// whole lifetime (retries included).
    fn rss_core(&self, rid: usize) -> usize {
        let slot = hash_mix(self.cfg.seed ^ 0x55aa ^ (rid as u64)) % 128;
        (slot as usize) % self.cores.len()
    }

    /// Whether the guard ladder currently sits on its shed rung or lower,
    /// tightening admission bounds and CoDel targets.
    fn shed_rung_active(&self) -> bool {
        self.guard
            .as_ref()
            .is_some_and(|g| g.policy.ladder && g.ladder.rung().is_overloaded())
    }

    /// The least-loaded core eligible for a request's current component
    /// (respecting multi-machine placement and component affinity).
    fn least_loaded_core(&self, rid: usize) -> usize {
        let mut candidates: Vec<usize> = if let Some(mm) = self.cfg.multi_machine {
            // The request runs on the machine hosting its current
            // component's tier.
            let component = self.live[rid]
                .as_ref()
                .expect("enqueued request is live")
                .stage()
                .component;
            let machine = mm.machine_of(component);
            let per_machine = self.cores.len() / mm.machines;
            (machine * per_machine..(machine + 1) * per_machine).collect()
        } else if self.cfg.component_affinity {
            self.affinity_cores(rid)
        } else {
            (0..self.cores.len()).collect()
        };
        if let Some(parked) = self.parked_core() {
            if candidates.len() > 1 {
                candidates.retain(|&c| c != parked);
            }
        }
        candidates
            .into_iter()
            .min_by_key(|&c| self.runqueues[c].len() + usize::from(self.cores[c].running.is_some()))
            .expect("at least one core")
    }

    /// Cores eligible for a request's current component under
    /// [`SimConfig::component_affinity`]: web tier on core 0, application
    /// tier on the middle cores, database on the last core; standalone
    /// components may run anywhere.
    fn affinity_cores(&self, rid: usize) -> Vec<usize> {
        use rbv_workloads::Component;
        let n = self.cores.len();
        let component = self.live[rid]
            .as_ref()
            .expect("enqueued request is live")
            .stage()
            .component;
        match component {
            Component::WebTier => vec![0],
            Component::AppTier => {
                if n > 2 {
                    (1..n - 1).collect()
                } else {
                    (0..n).collect()
                }
            }
            Component::Database => vec![n - 1],
            Component::Standalone => (0..n).collect(),
        }
    }

    // ----- time advancement ----------------------------------------------

    /// Advances every running core linearly from `last_advance` to `now`
    /// under the current rates. Exact because rates only change at events.
    fn advance_all(&mut self, now: Cycles) {
        let interval_start = self.last_advance;
        let elapsed = now.saturating_sub(interval_start);
        self.last_advance = now;
        if elapsed.is_zero() {
            return;
        }
        let dt = elapsed.as_f64();
        let mut running_count = 0usize;
        let mut high_count = 0usize;
        for c in 0..self.cores.len() {
            let Some(rid) = self.cores[c].running else {
                continue;
            };
            let rate = self.rates[c].expect("running core has a rate");
            running_count += 1;
            if let Some(threshold) = self.cfg.measure_threshold {
                if rate.l2_misses_per_ins() >= threshold {
                    high_count += 1;
                }
            }
            let d_ins = dt / rate.cpi;
            let d_refs = d_ins * rate.l2_refs_per_ins;
            let d_misses = d_refs * rate.l2_miss_ratio;
            let lr = self.live[rid].as_mut().expect("running request is live");
            lr.ins_in_stage += d_ins;
            lr.cum_cycles += dt;
            lr.cum_ins += d_ins;
            lr.accum.cycles += dt;
            lr.accum.instructions += d_ins;
            lr.accum.l2_refs += d_refs;
            lr.accum.l2_misses += d_misses;
        }
        if running_count > 0 {
            self.stats.busy_cycles += dt;
            self.stats.high_usage_cycles[high_count.min(self.cores.len())] += dt;
        }
        // An L2-pressure episode boundary: the simultaneous-high count over
        // [interval_start, now] differs from the previously reported one.
        // The change took effect at the event that started the interval.
        if self.sink.is_some() && self.cfg.measure_threshold.is_some() {
            let high = if running_count > 0 {
                high_count.min(self.cores.len())
            } else {
                0
            };
            if high != self.trace_high {
                self.trace_high = high;
                let event = TraceEvent::L2Pressure {
                    ts: interval_start,
                    high_cores: high as u32,
                };
                self.sink
                    .as_deref_mut()
                    .expect("checked above")
                    .record(event);
            }
        }
        // Energy/thermal integration: every core (idle ones pay static
        // power) advances across the elapsed slice under the P-state and
        // activity that were in force during it. Fault multipliers are
        // step functions of time, sampled at the slice start — the same
        // "state changes take effect at events" convention as the rates.
        if let Some(ps) = &mut self.power {
            let n = ps.cores.len();
            let ambient_delta = ps.faults.ambient_delta_at(interval_start);
            let dyn_mult = ps.faults.dyn_mult_at(interval_start);
            for c in 0..n {
                let r_mult = ps.faults.cooling_mult_for(c, n, interval_start);
                let out = ps.cores[c].advance(
                    &ps.policy,
                    elapsed,
                    ps.slice_pstate[c],
                    ps.slice_act_milli[c],
                    ambient_delta,
                    r_mult,
                    dyn_mult,
                );
                ps.total_uw_cycles += u128::from(out.power_uw) * u128::from(elapsed.get());
                ps.max_temp_milli_c = ps.max_temp_milli_c.max(out.temp_milli_c);
                if let Some(engaged) = out.throttle_edge {
                    // The firmware clamp (or its release) changes the
                    // effective CPI from the next slice on.
                    self.rates_dirty = true;
                    if let Some(sink) = self.sink.as_deref_mut() {
                        sink.record(TraceEvent::ThermalThrottle {
                            ts: now,
                            core: c as u32,
                            engaged,
                            temp_milli_c: out.temp_milli_c,
                        });
                    }
                }
            }
        }
    }

    // ----- rates and milestones -------------------------------------------

    fn flush_rates(&mut self) {
        if !self.rates_dirty {
            return;
        }
        self.rates_dirty = false;
        let profiles: Vec<Option<SegmentProfile>> = self
            .cores
            .iter()
            .map(|core| {
                core.running
                    .map(|rid| self.live[rid].as_ref().expect("running is live").profile())
            })
            .collect();
        self.rates = if self.cfg.static_cache_partition {
            // Equal page-coloring slices of each shared L2 among its
            // occupied cores.
            let topo = self.cfg.machine.topology;
            let mut shares = vec![0.0; profiles.len()];
            for cluster in 0..topo.clusters() {
                let lo = cluster * topo.cores_per_cluster;
                let hi = (lo + topo.cores_per_cluster).min(profiles.len());
                let occupied = profiles[lo..hi].iter().filter(|p| p.is_some()).count();
                if occupied > 0 {
                    let slice = self.cfg.machine.l2_capacity_bytes / occupied as f64;
                    for i in lo..hi {
                        if profiles[i].is_some() {
                            shares[i] = slice;
                        }
                    }
                }
            }
            self.cfg.machine.evaluate_partitioned(&profiles, &shares)
        } else {
            self.cfg.machine.evaluate(&profiles)
        };
        self.apply_dvfs();
        for c in 0..self.cores.len() {
            self.push_milestone(c);
        }
    }

    /// Applies DVFS to the freshly evaluated rates: splits each running
    /// core's CPI into its compute base and memory-stall components, slows
    /// only the base by the effective P-state's inverse ratio (memory
    /// stalls are wall-time and the clock is counted in nominal cycles),
    /// and records the slice P-state/activity the next [`Engine::advance_all`]
    /// integrates power over. No-op without a power model; at full speed
    /// the rates are left bit-identical to a power-unaware build.
    fn apply_dvfs(&mut self) {
        let Some(ps) = &mut self.power else {
            return;
        };
        let cap = self.guard.as_ref().and_then(|g| {
            g.power_ladder
                .as_ref()
                .filter(|l| l.rung().caps_frequency())
                .map(|l| l.policy().cap_pstate)
        });
        let now = self.queue.now();
        for c in 0..self.cores.len() {
            let effective = ps.cores[c].effective_pstate(&ps.policy, cap.unwrap_or(0));
            ps.slice_pstate[c] = effective;
            ps.slice_act_milli[c] = match self.rates[c].as_mut() {
                Some(rate) => {
                    let stall = rate.l2_refs_per_ins
                        * (self.cfg.machine.l2_hit_cycles * (1.0 - rate.l2_miss_ratio)
                            + rate.mem_latency_cycles * rate.l2_miss_ratio);
                    let base = (rate.cpi - stall).max(0.0);
                    let factor = ps.policy.compute_cpi_factor(effective);
                    if factor != 1.0 {
                        rate.cpi = base * factor + stall;
                    }
                    ((base * factor / rate.cpi) * 1000.0)
                        .round()
                        .clamp(0.0, 1000.0) as u32
                }
                None => 0,
            };
            if effective != ps.last_pstate[c] {
                ps.dvfs_transitions += 1;
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.record(TraceEvent::DvfsTransition {
                        ts: now,
                        core: c as u32,
                        from_pstate: ps.last_pstate[c] as u32,
                        to_pstate: effective as u32,
                        ratio_milli: ps.policy.ratio_milli(effective),
                    });
                }
                ps.last_pstate[c] = effective;
            }
        }
    }

    fn push_milestone(&mut self, core: usize) {
        self.cores[core].milestone_epoch += 1;
        let epoch = self.cores[core].milestone_epoch;
        let Some(rid) = self.cores[core].running else {
            return;
        };
        let rate = self.rates[core].expect("running core has a rate");
        let lr = self.live[rid].as_ref().expect("running is live");
        let (boundary, _) = lr.next_boundary();
        let d_ins = (boundary - lr.ins_in_stage).max(0.0);
        let cycles = (d_ins * rate.cpi).ceil().max(1.0) as u64;
        self.queue
            .schedule_after(Cycles::new(cycles), Event::Milestone { core, epoch });
    }

    fn on_milestone(&mut self, core: usize, now: Cycles, factory: &mut dyn RequestFactory) {
        let Some(rid) = self.cores[core].running else {
            return;
        };
        loop {
            let lr = self.live[rid].as_ref().expect("running is live");
            let (boundary, is_syscall) = lr.next_boundary();
            if lr.ins_in_stage + INS_EPS < boundary {
                break;
            }
            if is_syscall {
                self.handle_syscall(core, rid, now, boundary);
                continue;
            }
            // Phase boundary: snap to it exactly.
            let lr = self.live[rid].as_mut().expect("running is live");
            lr.ins_in_stage = lr.ins_in_stage.max(boundary);
            let last_phase = lr.phase_idx + 1 == lr.stage().phases.len();
            if !last_phase {
                lr.phase_idx += 1;
                self.rates_dirty = true;
                continue;
            }
            // Stage (possibly request) end.
            self.on_stage_end(core, rid, now, factory);
            return;
        }
        if !self.rates_dirty {
            self.push_milestone(core);
        }
    }

    fn handle_syscall(&mut self, core: usize, rid: usize, now: Cycles, boundary: f64) {
        let lr = self.live[rid].as_mut().expect("running is live");
        lr.ins_in_stage = lr.ins_in_stage.max(boundary);
        let name = lr.stage().syscalls[lr.next_syscall].name;
        lr.next_syscall += 1;
        lr.syscalls.push(SyscallRecord {
            at: now,
            request_cycles: lr.cum_cycles,
            request_ins: lr.cum_ins,
            name,
        });
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(TraceEvent::SyscallEntry {
                ts: now,
                core: core as u32,
                rid: rid as u64,
                name: name.to_string(),
            });
        }

        let prev = self.live[rid]
            .as_ref()
            .expect("running is live")
            .last_syscall;
        let (trigger, t_min) = match &self.cfg.sampling {
            SamplingPolicy::SyscallTriggered { t_syscall_min, .. } => (true, *t_syscall_min),
            SamplingPolicy::TransitionSignals {
                triggers,
                t_syscall_min,
                ..
            } => (triggers.contains(&name), *t_syscall_min),
            SamplingPolicy::TransitionSignalPairs {
                triggers,
                t_syscall_min,
                ..
            } => (
                prev.is_some_and(|p| triggers.contains(&(p, name))),
                *t_syscall_min,
            ),
            _ => (false, Cycles::ZERO),
        };
        if trigger
            && now.saturating_sub(self.cores[core].last_sample) >= self.scaled_interval(t_min)
        {
            if self.sampling_starved(core, now) {
                // Graceful degradation: the syscall sampling path is
                // starved, so this trigger collects nothing and the
                // already-armed backup interrupt timer covers the stretch.
            } else {
                self.take_sample(core, rid, now, SampleMode::SyscallEntry, Some(name));
                self.rearm_backup_timer(core, now);
            }
        }
        self.live[rid]
            .as_mut()
            .expect("running is live")
            .last_syscall = Some(name);
    }

    fn on_stage_end(
        &mut self,
        core: usize,
        rid: usize,
        now: Cycles,
        factory: &mut dyn RequestFactory,
    ) {
        // Context-switch sample flushes the stage's final period (unless
        // the governor is decimating: then it extends into the next one).
        let flushed = self.cs_sample(core, rid, now);
        self.cores[core].running = None;
        self.rates_dirty = true;
        self.stats.context_switches += 1;
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(TraceEvent::SliceEnd {
                ts: now,
                core: core as u32,
                rid: rid as u64,
            });
            sink.record(TraceEvent::ContextSwitch {
                ts: now,
                core: core as u32,
                from: rid as u64,
                reason: SwitchReason::StageEnd,
            });
        }

        let lr = self.live[rid].as_mut().expect("running is live");
        lr.stage_marks.push((lr.cum_ins, lr.cum_cycles));
        if lr.stage_idx + 1 < lr.request.stages.len() {
            // Propagate the request context to the next component (§2.1):
            // the socket hop re-enters the scheduler on another runqueue —
            // after a network delay when the next tier lives on another
            // machine of a distributed deployment (§7).
            let from = lr.stage().component;
            lr.stage_idx += 1;
            lr.phase_idx = 0;
            lr.next_syscall = 0;
            lr.ins_in_stage = 0.0;
            let to = lr.stage().component;
            let crosses_machines = self
                .cfg
                .multi_machine
                .is_some_and(|mm| mm.machine_of(from) != mm.machine_of(to));
            if crosses_machines {
                let delay = self
                    .cfg
                    .multi_machine
                    .expect("checked above")
                    .network_hop_delay;
                self.queue.schedule_after(delay, Event::HopWakeup { rid });
            } else {
                self.enqueue_runnable(rid);
            }
        } else {
            if !flushed {
                self.teardown_flush(rid);
            }
            let lr = self.live[rid].take().expect("request was live");
            self.push_completed(CompletedRequest {
                id: lr.id,
                app: lr.request.app,
                class: lr.request.class,
                timeline: lr.timeline,
                syscalls: lr.syscalls,
                arrived_at: lr.arrived_at,
                finished_at: now,
                stage_marks: lr.stage_marks,
            });
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.record(TraceEvent::RequestEnd {
                    ts: now,
                    rid: rid as u64,
                });
            }
            if self.cfg.arrivals == ArrivalProcess::ClosedLoop {
                self.spawn(factory);
            }
        }
        // The enqueue above may already have dispatched onto this core.
        if self.cores[core].running.is_none() {
            self.schedule_next_on(core);
        }
    }

    // ----- sampling --------------------------------------------------------

    /// One Bernoulli draw from the dedicated fault stream. Zero
    /// probability draws nothing, so disabled fault channels leave the
    /// stream untouched.
    fn fault_chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        use rand::Rng;
        self.fault_rng.gen::<f64>() < p
    }

    /// Whether the syscall sampling path on `core` is inside (or just
    /// entered) an injected starvation window.
    fn sampling_starved(&mut self, core: usize, now: Cycles) -> bool {
        if now < self.starved_until[core] {
            return true;
        }
        if self.fault_chance(self.cfg.faults.syscall_starvation_prob) {
            let until = now + self.cfg.faults.syscall_starvation_window;
            self.starved_until[core] = until;
            self.stats.starvation_windows += 1;
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.record(TraceEvent::SamplingStarved {
                    ts: now,
                    core: core as u32,
                    until,
                });
            }
            return true;
        }
        false
    }

    /// Samples the counters on `core`: flushes the running request's
    /// accumulated period into its timeline (with "do no harm"
    /// compensation), updates its online predictor, records transition
    /// training data, and injects the observer-effect events of this
    /// sample into the next period.
    fn take_sample(
        &mut self,
        core: usize,
        rid: usize,
        now: Cycles,
        mode: SampleMode,
        syscall: Option<SyscallName>,
    ) {
        let ctx = mode.context();
        // Guard coupling, resolved before the live-request borrow below:
        // an active health ladder supersedes the one-shot error gate, and
        // its lower rungs freeze predictor training. A governed run
        // tracks prediction error even without a configured gate — it is
        // the ladder's counter-noise input.
        let ladder_active = self.guard.as_ref().is_some_and(|g| g.policy.ladder);
        let gate_cfg = if ladder_active {
            None
        } else {
            self.cfg.easing_error_gate
        };
        let track_err = self.cfg.easing_error_gate.is_some() || self.guard.is_some();
        let frozen = self.predictions_frozen();
        self.stats.samples_by_mode[mode.index()] += 1;
        match ctx {
            SamplingContext::InKernel => self.stats.samples_inkernel += 1,
            SamplingContext::Interrupt => self.stats.samples_interrupt += 1,
        }
        let lr = self.live[rid].as_mut().expect("sampled request is live");
        let mut period = lr.accum;
        lr.accum = SamplePeriod::default();
        if self.cfg.compensate_observer_effect {
            if let Some(injected_ctx) = lr.accum_injection {
                let min_cost = spin_baseline(injected_ctx);
                period.cycles = (period.cycles - min_cost.cycles).max(0.0);
                period.instructions = (period.instructions - min_cost.instructions).max(0.0);
                period.l2_refs = (period.l2_refs - min_cost.l2_refs).max(0.0);
                period.l2_misses = (period.l2_misses - min_cost.l2_misses).max(0.0);
            }
        }
        lr.accum_injection = None;
        if self.cfg.counter_noise > 0.0 {
            // Measurement noise on the cache event counters (see
            // `SimConfig::counter_noise`). The relative noise shrinks with
            // the square root of the sample duration — event-count jitter
            // averages out over longer windows — with 1 ms as the
            // reference duration. CPU cycles and instructions are
            // architecturally exact and stay untouched.
            let dur_ms = period.cycles / Cycles::from_millis(1).as_f64();
            let sigma = self.cfg.counter_noise * (1.0 / dur_ms.max(1e-3)).sqrt().min(4.0);
            period.l2_refs *= (1.0 + sigma * 0.5 * gaussian(&mut lr.noise_rng)).max(0.0);
            period.l2_misses *= (1.0 + sigma * gaussian(&mut lr.noise_rng)).max(0.0);
            // Independent jitter must not break the counter invariant
            // misses <= references.
            period.l2_misses = period.l2_misses.min(period.l2_refs);
        }
        if self.cfg.faults.counter_skid_sigma > 0.0 {
            // Injected counter skid: interrupt-based attribution lands a
            // few events early or late, on top of `counter_noise`.
            let sigma = self.cfg.faults.counter_skid_sigma;
            period.l2_refs *= (1.0 + sigma * gaussian(&mut self.fault_rng)).max(0.0);
            period.l2_misses *= (1.0 + sigma * gaussian(&mut self.fault_rng)).max(0.0);
            period.l2_misses = period.l2_misses.min(period.l2_refs);
        }
        let mut low_conf = self.low_conf[core].take();
        if self.cfg.faults.counter_overflow_prob > 0.0 {
            use rand::Rng;
            if self.fault_rng.gen::<f64>() < self.cfg.faults.counter_overflow_prob {
                // Wrap detected: zero the cache counters instead of
                // reporting wrapped garbage, and flag the sample.
                period.l2_refs = 0.0;
                period.l2_misses = 0.0;
                self.stats.counter_overflows += 1;
                low_conf = Some("counter_overflow");
            }
        }

        if let Some(sink) = self.sink.as_deref_mut() {
            let origin = match ctx {
                SamplingContext::InKernel => SampleOrigin::InKernel,
                SamplingContext::Interrupt => SampleOrigin::Interrupt,
            };
            sink.record(TraceEvent::SamplingInstant {
                ts: now,
                core: core as u32,
                rid: rid as u64,
                origin,
                syscall: syscall.map(|s| s.to_string()),
                cycles: period.cycles,
                instructions: period.instructions,
                l2_refs: period.l2_refs,
                l2_misses: period.l2_misses,
            });
        }

        if let Some(reason) = low_conf {
            // Degrade gracefully: the flagged period still lands on the
            // timeline (a gap would corrupt serialization), but it neither
            // produces transition records nor trains the predictor, and a
            // stale pending transition is dropped rather than paired with
            // a corrupted "after" period.
            self.stats.samples_low_confidence += 1;
            lr.pending_transition = None;
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.record(TraceEvent::LowConfidenceSample {
                    ts: now,
                    core: core as u32,
                    rid: rid as u64,
                    reason: reason.into(),
                });
            }
        } else {
            let period_cpi = period.value(Metric::Cpi);
            if let (Some((prev, name, before)), Some(after)) =
                (lr.pending_transition.take(), period_cpi)
            {
                self.transitions.push(TransitionRecord {
                    name,
                    prev_name: prev,
                    before_cpi: before,
                    after_cpi: after,
                });
            }
            if let (Some(name), Some(before)) = (syscall, period_cpi) {
                lr.pending_transition = Some((lr.last_syscall, name, before));
            }

            if let Some(mpi) = period.value(Metric::L2MissesPerIns) {
                if track_err {
                    if let Some(pred) = lr.predictor.predict() {
                        if mpi > 1e-12 {
                            let rel = ((pred - mpi) / mpi).abs().min(10.0);
                            self.pred_err = if self.pred_err_primed {
                                0.9 * self.pred_err + 0.1 * rel
                            } else {
                                rel
                            };
                            self.pred_err_primed = true;
                            if let Some(gate) = gate_cfg {
                                let engaged = self.pred_err > gate;
                                if engaged != self.gate_engaged {
                                    self.gate_engaged = engaged;
                                    if let Some(sink) = self.sink.as_deref_mut() {
                                        sink.record(TraceEvent::EasingGate {
                                            ts: now,
                                            engaged,
                                            error: self.pred_err,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
                if !frozen {
                    // Duration in vaEWMA units (t̂ = 1 ms).
                    let millis = period.cycles / Cycles::from_millis(1).as_f64();
                    lr.predictor.observe(mpi, millis.max(1e-9));
                }
            }
        }
        lr.timeline.push(period);

        // The sampling operation itself perturbs the *next* period.
        let pollution = pollution_of(&lr.profile());
        let cost = injected_cost(ctx, pollution);
        lr.accum.cycles += cost.cycles;
        lr.accum.instructions += cost.instructions;
        lr.accum.l2_refs += cost.l2_refs;
        lr.accum.l2_misses += cost.l2_misses;
        lr.accum_injection = Some(ctx);

        self.cores[core].last_sample = now;
    }

    fn on_sample_timer(&mut self, core: usize, now: Cycles) {
        let Some(rid) = self.cores[core].running else {
            return;
        };
        // Injected measurement fault: the sampling interrupt is lost
        // before its handler runs. The open period extends into the next
        // sample, which is flagged low-confidence, and the timer re-arms
        // as usual so sampling recovers on its own.
        let lost = self.fault_chance(self.cfg.faults.lost_interrupt_prob);
        if lost {
            self.stats.samples_lost += 1;
            self.low_conf[core] = Some("lost_interrupt");
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.record(TraceEvent::SampleLost {
                    ts: now,
                    core: core as u32,
                });
            }
        }
        match &self.cfg.sampling {
            SamplingPolicy::Interrupt { period } => {
                let period = self.scaled_interval(*period);
                if !lost {
                    self.take_sample(core, rid, now, SampleMode::Apic, None);
                }
                self.cores[core].sample_epoch += 1;
                let epoch = self.cores[core].sample_epoch;
                self.queue
                    .schedule_after(period, Event::SampleTimer { core, epoch });
            }
            SamplingPolicy::SyscallTriggered { .. }
            | SamplingPolicy::TransitionSignals { .. }
            | SamplingPolicy::TransitionSignalPairs { .. } => {
                // Backup interrupt covering a syscall-free stretch.
                if !lost {
                    self.take_sample(core, rid, now, SampleMode::BackupTimer, None);
                }
                self.rearm_backup_timer(core, now);
            }
            SamplingPolicy::ContextSwitchOnly => {}
        }
    }

    fn rearm_backup_timer(&mut self, core: usize, _now: Cycles) {
        let delay = match &self.cfg.sampling {
            SamplingPolicy::SyscallTriggered { t_backup_int, .. }
            | SamplingPolicy::TransitionSignals { t_backup_int, .. }
            | SamplingPolicy::TransitionSignalPairs { t_backup_int, .. } => *t_backup_int,
            _ => return,
        };
        let delay = self.scaled_interval(delay);
        self.cores[core].sample_epoch += 1;
        let epoch = self.cores[core].sample_epoch;
        self.queue
            .schedule_after(delay, Event::SampleTimer { core, epoch });
    }

    // ----- guard ------------------------------------------------------------

    /// Applies the governor's interval scale to a sampling interval.
    /// Exact identity at scale 1.0 — the only value an ungoverned run can
    /// hold — so the guard's mere presence cannot perturb event timing.
    fn scaled_interval(&self, t: Cycles) -> Cycles {
        if self.sample_scale <= 1.0 {
            return t;
        }
        Cycles::new((t.as_f64() * self.sample_scale).round() as u64)
    }

    /// Re-arms every busy core's sampling timer at the freshly scaled
    /// interval, invalidating in-flight timers armed at the pre-back-off
    /// cadence (idle cores re-arm on their next dispatch).
    fn rearm_sampling_timers(&mut self) {
        for core in 0..self.cores.len() {
            if self.cores[core].running.is_none() {
                continue;
            }
            match &self.cfg.sampling {
                SamplingPolicy::Interrupt { period } => {
                    let period = self.scaled_interval(*period);
                    self.cores[core].sample_epoch += 1;
                    let epoch = self.cores[core].sample_epoch;
                    self.queue
                        .schedule_after(period, Event::SampleTimer { core, epoch });
                }
                SamplingPolicy::SyscallTriggered { .. }
                | SamplingPolicy::TransitionSignals { .. }
                | SamplingPolicy::TransitionSignalPairs { .. } => {
                    self.rearm_backup_timer(core, self.queue.now());
                }
                SamplingPolicy::ContextSwitchOnly => {}
            }
        }
    }

    /// Context-switch sampling under the governor's per-mode decimation:
    /// at interval scale `s` only every `ceil(s)`-th switch is sampled.
    /// A skipped switch takes no sample at all — it injects no observer
    /// cost, and the running period simply keeps accumulating into the
    /// request's next sample (the same graceful extension a lost
    /// interrupt causes). At scale 1.0 — the only value an ungoverned
    /// run can hold — every switch is sampled, bit-identically to builds
    /// that predate the guard. Returns whether a sample was taken, so a
    /// completing request can still close its timeline (see
    /// [`Self::teardown_flush`]).
    fn cs_sample(&mut self, core: usize, rid: usize, now: Cycles) -> bool {
        if self.sample_scale > 1.0 {
            self.cs_skip += 1;
            if self.cs_skip < self.sample_scale.ceil() as u64 {
                return false;
            }
            self.cs_skip = 0;
        }
        self.take_sample(core, rid, now, SampleMode::ContextSwitch, None);
        true
    }

    /// Closes a completing request's timeline when the governor's
    /// decimation elided its final context-switch sample. Dropping the
    /// residual period would bias the measured request totals toward
    /// whichever phases happened to be sampled — exactly the kind of
    /// observer-induced distortion the guard exists to prevent. Modeled
    /// as a free counter read at teardown: the scheduler is already in
    /// the kernel retiring the request and no sampling path runs, so no
    /// observer cost is injected and no sample is counted; the usual
    /// observer-effect compensation still applies to any injection
    /// carried over from the last real sample. Never reached at scale
    /// 1.0, so ungoverned runs are untouched.
    fn teardown_flush(&mut self, rid: usize) {
        let compensate = self.cfg.compensate_observer_effect;
        let lr = self.live[rid].as_mut().expect("completing request is live");
        let mut period = lr.accum;
        lr.accum = SamplePeriod::default();
        if compensate {
            if let Some(injected_ctx) = lr.accum_injection {
                let min_cost = spin_baseline(injected_ctx);
                period.cycles = (period.cycles - min_cost.cycles).max(0.0);
                period.instructions = (period.instructions - min_cost.instructions).max(0.0);
                period.l2_refs = (period.l2_refs - min_cost.l2_refs).max(0.0);
                period.l2_misses = (period.l2_misses - min_cost.l2_misses).max(0.0);
            }
        }
        lr.accum_injection = None;
        lr.pending_transition = None;
        if period.cycles > 0.0 {
            lr.timeline.push(period);
        }
    }

    /// Cumulative priced observer cost: every sample taken so far, costed
    /// at the Mbench-Spin floor of the hook that took it (the same
    /// pricing the post-run [`crate::accountant::ObserverReport`] uses).
    fn priced_sampling_cycles(&self) -> f64 {
        SampleMode::ALL
            .iter()
            .map(|m| {
                self.stats.samples_by_mode[m.index()] as f64 * spin_baseline(m.context()).cycles
            })
            .sum()
    }

    /// Closes one guard accounting window: feeds the window's counter
    /// deltas to the governor (adapting the sampling scale), the health
    /// ladder, and the invariant monitor, then opens the next window.
    fn on_guard_tick(&mut self, now: Cycles, reschedule: bool) {
        let Some(mut guard) = self.guard.take() else {
            return;
        };
        let priced = self.priced_sampling_cycles();
        let samples: u64 = self.stats.samples_by_mode.iter().sum();
        // Sample staleness: age of the newest sample on any busy core,
        // as a fraction of the window. Idle machines have nothing to
        // sample and score fresh.
        let staleness = match self
            .cores
            .iter()
            .filter(|c| c.running.is_some())
            .map(|c| c.last_sample)
            .max()
        {
            Some(last) => {
                (now.saturating_sub(last).as_f64() / guard.policy.window.as_f64()).clamp(0.0, 1.0)
            }
            None => 0.0,
        };
        let window = WindowSample {
            busy_cycles: self.stats.busy_cycles - guard.base_busy,
            sampling_cycles: priced - guard.base_sampling,
            samples: samples - guard.base_samples,
            samples_lost: self.stats.samples_lost - guard.base_lost,
            samples_low_confidence: self.stats.samples_low_confidence - guard.base_low_conf,
            starvation_windows: self.stats.starvation_windows - guard.base_starved,
            staleness_frac: staleness,
            noise_ewma: if self.pred_err_primed {
                self.pred_err
            } else {
                0.0
            },
            offered: self.generated as u64 - guard.base_offered,
            rejected: self.rejected_total() - guard.base_rejected,
            queue_frac: self.deepest_queue_frac(),
        };

        let decision = guard.governor.observe(&window);
        if decision.action != GovernorAction::Hold {
            self.sample_scale = decision.scale;
            if decision.action == GovernorAction::Backoff {
                // In-flight timers armed before this back-off would keep
                // firing at the old cadence for one more period, pushing
                // the correction lag past the one-window slack.
                self.rearm_sampling_timers();
            }
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.record(TraceEvent::GovernorAdjust {
                    ts: now,
                    action: decision.action.label().to_string(),
                    scale: decision.scale,
                    overhead_frac: decision.overhead_frac,
                    budget_frac: guard.governor.budget_frac(),
                });
            }
        }

        if guard.policy.ladder {
            if let Some(t) = guard.ladder.observe(&window, now) {
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.record(TraceEvent::HealthTransition {
                        ts: now,
                        from: t.from.label().to_string(),
                        to: t.to.label().to_string(),
                        score: t.score,
                    });
                }
            }
        }

        // Power capping: feed the hottest core's thermal pressure into the
        // power ladder. Rung moves change the frequency cap (and possibly
        // park/unpark a core), so the rates must be rebuilt. Reported on
        // the health-transition channel with the distinct power-rung
        // labels ("nominal"/"freq_cap"/"core_park").
        let mut parked_update = None;
        if let (Some(ladder), Some(ps)) = (guard.power_ladder.as_mut(), &self.power) {
            let pressure = ps
                .cores
                .iter()
                .map(|c| c.pressure(&ps.policy))
                .fold(0.0, f64::max);
            if let Some(t) = ladder.observe(pressure, now) {
                self.rates_dirty = true;
                if t.to.parks_core() {
                    // Park the hottest core (ties to the lowest index),
                    // latched for the rung's lifetime.
                    let mut hottest = 0;
                    for (core, state) in ps.cores.iter().enumerate().skip(1) {
                        if state.temp_milli_c > ps.cores[hottest].temp_milli_c {
                            hottest = core;
                        }
                    }
                    parked_update = Some(Some(hottest));
                } else if t.from.parks_core() {
                    parked_update = Some(None);
                }
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.record(TraceEvent::HealthTransition {
                        ts: now,
                        from: t.from.label().to_string(),
                        to: t.to.label().to_string(),
                        score: t.pressure,
                    });
                }
            }
        }
        if let Some(parked) = parked_update {
            guard.parked = parked;
        }

        if guard.policy.invariants {
            let live = self.live.iter().filter(|l| l.is_some()).count() as u64;
            let before = guard.monitor.violations_total();
            guard.monitor.check_request_conservation(
                self.generated as u64,
                live,
                self.n_completed as u64,
                self.n_failed as u64,
                0,
            );
            guard
                .monitor
                .check_clock_monotonic(guard.win_start.get(), now.get());
            guard.monitor.check_counter_monotonic(
                "busy_cycles",
                guard.base_busy,
                self.stats.busy_cycles,
            );
            guard
                .monitor
                .check_counter_monotonic("sampling_cycles", guard.base_sampling, priced);
            guard.monitor.check_quantum_accounting(
                window.busy_cycles,
                now.saturating_sub(guard.win_start).get(),
                self.cores.len() as u64,
            );
            guard
                .monitor
                .check_non_negative_slack(guard.governor.max_breach_streak());
            if let Some(ps) = &self.power {
                let core_sum: u128 = ps.cores.iter().map(|c| c.energy_uw_cycles).sum();
                guard
                    .monitor
                    .check_energy_conservation(core_sum, ps.total_uw_cycles);
                for c in 0..ps.cores.len() {
                    let pstate = ps.slice_pstate[c];
                    guard.monitor.check_frequency_bounds(
                        c as u64,
                        pstate as u64,
                        ps.policy.pstates() as u64,
                        u64::from(ps.policy.ratio_milli(pstate)),
                    );
                }
                let engages: u64 = ps.cores.iter().map(|c| c.throttle_engages).sum();
                let releases: u64 = ps.cores.iter().map(|c| c.throttle_releases).sum();
                let throttled = ps.cores.iter().filter(|c| c.throttled).count() as u64;
                guard
                    .monitor
                    .check_throttle_conservation(engages, releases, throttled);
            }
            if guard.monitor.violations_total() > before {
                if let Some((kind, detail)) = guard.monitor.last_violation() {
                    if let Some(sink) = self.sink.as_deref_mut() {
                        sink.record(TraceEvent::InvariantViolation {
                            ts: now,
                            invariant: kind.label().to_string(),
                            detail: detail.to_string(),
                        });
                    }
                }
            }
        }

        guard.win_start = now;
        guard.base_busy = self.stats.busy_cycles;
        guard.base_sampling = priced;
        guard.base_samples = samples;
        guard.base_lost = self.stats.samples_lost;
        guard.base_low_conf = self.stats.samples_low_confidence;
        guard.base_starved = self.stats.starvation_windows;
        guard.base_offered = self.generated as u64;
        guard.base_rejected = self.rejected_total();

        if reschedule {
            self.queue
                .schedule_after(guard.policy.window, Event::GuardTick);
        }
        self.guard = Some(guard);
    }

    /// Folds the guard components' verdicts into the run statistics (so
    /// they reach the ledger's `guard.*` metric family).
    fn finalize_guard_stats(&mut self) {
        let Some(guard) = &self.guard else {
            return;
        };
        self.stats.governor_windows = guard.governor.windows();
        self.stats.governor_backoffs = guard.governor.backoffs();
        self.stats.governor_recoveries = guard.governor.recoveries();
        self.stats.governor_budget_breaches = guard.governor.breaches();
        self.stats.governor_max_breach_streak = guard.governor.max_breach_streak();
        self.stats.governor_final_scale = guard.governor.scale();
        self.stats.governor_overhead_frac = guard.governor.cumulative_overhead_frac();
        self.stats.governor_slack_frac = guard.governor.slack_frac();
        self.stats.health_transitions = guard.ladder.transitions();
        self.stats.health_final_rung = guard.ladder.rung().index() as u64;
        self.stats.invariant_checks = guard.monitor.checks();
        self.stats.invariant_violations = guard.monitor.violations();
    }

    /// Folds the power model's end-of-run state into the statistics (the
    /// ledger's `energy.*` metric family). `stats.energy` stays `None` for
    /// power-off runs, so their metric key set — and therefore their
    /// serialized ledgers — are bit-identical to power-unaware builds.
    fn finalize_power_stats(&mut self) {
        let Some(ps) = &self.power else {
            return;
        };
        let (rung_transitions, final_rung) =
            match self.guard.as_ref().and_then(|g| g.power_ladder.as_ref()) {
                Some(ladder) => (ladder.transitions(), ladder.rung().index() as u64),
                None => (0, 0),
            };
        self.stats.energy = Some(EnergyStats {
            core_uw_cycles: ps.cores.iter().map(|c| c.energy_uw_cycles).collect(),
            total_uw_cycles: ps.total_uw_cycles,
            throttle_engages: ps.cores.iter().map(|c| c.throttle_engages).sum(),
            throttle_releases: ps.cores.iter().map(|c| c.throttle_releases).sum(),
            throttled_final: ps.cores.iter().filter(|c| c.throttled).count() as u64,
            dvfs_transitions: ps.dvfs_transitions,
            max_temp_milli_c: ps.max_temp_milli_c,
            final_temp_milli_c: ps.cores.iter().map(|c| c.temp_milli_c).collect(),
            power_rung_transitions: rung_transitions,
            power_final_rung: final_rung,
        });
    }

    /// End-of-run invariant sweep for ungoverned debug runs: the same
    /// conservation laws the governed monitor checks every window, run
    /// once over the whole run. Emits no events and draws nothing, so it
    /// cannot perturb the simulation it checks.
    fn debug_invariant_sweep(&mut self) {
        let mut monitor = InvariantMonitor::new();
        let live = self.live.iter().filter(|l| l.is_some()).count() as u64;
        monitor.check_request_conservation(
            self.generated as u64,
            live,
            self.n_completed as u64,
            self.n_failed as u64,
            0,
        );
        monitor.check_clock_monotonic(0, self.queue.now().get());
        monitor.check_counter_monotonic("busy_cycles", 0.0, self.stats.busy_cycles);
        monitor.check_quantum_accounting(
            self.stats.busy_cycles,
            self.queue.now().get(),
            self.cores.len() as u64,
        );
        if let Some(ps) = &self.power {
            let core_sum: u128 = ps.cores.iter().map(|c| c.energy_uw_cycles).sum();
            monitor.check_energy_conservation(core_sum, ps.total_uw_cycles);
        }
        self.stats.invariant_checks = monitor.checks();
        self.stats.invariant_violations = monitor.violations();
        debug_assert!(
            monitor.violations_total() == 0,
            "engine invariant violated: {}",
            monitor.first_violation().unwrap_or("unknown")
        );
    }

    // ----- scheduling -------------------------------------------------------

    /// Picks and dispatches the next request on an idle `core`.
    fn schedule_next_on(&mut self, core: usize) {
        debug_assert!(self.cores[core].running.is_none());
        let parked = self.parked_core() == Some(core);
        if self.cfg.work_stealing && !parked && self.runqueues[core].is_empty() {
            self.steal_into(core);
        }
        // A parked core never pulls new work from the cFCFS central
        // queue; its own (per-core) queue it still drains.
        let next = if parked && self.cfg.queue_discipline == Some(QueueDiscipline::Cfcfs) {
            None
        } else {
            self.pick_next(core)
        };
        let Some(rid) = next else {
            // Idle: cancel timers.
            self.cores[core].quantum_epoch += 1;
            self.cores[core].sample_epoch += 1;
            self.cores[core].resched_epoch += 1;
            self.cores[core].milestone_epoch += 1;
            self.rates_dirty = true;
            return;
        };
        self.dispatch(core, rid);
    }

    fn dispatch(&mut self, core: usize, rid: usize) {
        self.cores[core].running = Some(rid);
        self.cores[core].last_sample = self.queue.now();
        self.rates_dirty = true;
        if self.sink.is_some() {
            let lr = self.live[rid].as_ref().expect("dispatched request is live");
            let event = TraceEvent::SliceBegin {
                ts: self.queue.now(),
                core: core as u32,
                rid: rid as u64,
                stage: lr.stage_idx as u32,
                component: lr.stage().component.to_string(),
            };
            self.sink
                .as_deref_mut()
                .expect("checked above")
                .record(event);
        }

        self.cores[core].quantum_epoch += 1;
        let qe = self.cores[core].quantum_epoch;
        self.queue
            .schedule_after(self.cfg.quantum, Event::Quantum { core, epoch: qe });

        match &self.cfg.sampling {
            SamplingPolicy::Interrupt { period } => {
                let period = self.scaled_interval(*period);
                self.cores[core].sample_epoch += 1;
                let epoch = self.cores[core].sample_epoch;
                self.queue
                    .schedule_after(period, Event::SampleTimer { core, epoch });
            }
            SamplingPolicy::SyscallTriggered { .. }
            | SamplingPolicy::TransitionSignals { .. }
            | SamplingPolicy::TransitionSignalPairs { .. } => {
                self.rearm_backup_timer(core, self.queue.now());
            }
            SamplingPolicy::ContextSwitchOnly => {}
        }

        if let SchedulerPolicy::ContentionEasing {
            resched_interval, ..
        } = &self.cfg.scheduler
        {
            let interval = *resched_interval;
            self.cores[core].resched_epoch += 1;
            let epoch = self.cores[core].resched_epoch;
            self.queue
                .schedule_after(interval, Event::Resched { core, epoch });
        }
    }

    /// Migrates the tail request of the longest runqueue into an idle
    /// `core`'s (empty) queue. Stealing from the tail keeps each queue's
    /// head position — which both schedulers treat as meaningful — intact.
    fn steal_into(&mut self, core: usize) {
        if self.parked_core() == Some(core) {
            return;
        }
        let victim = (0..self.runqueues.len())
            .filter(|&c| c != core)
            .max_by_key(|&c| self.runqueues[c].len())
            .filter(|&c| self.runqueues[c].len() > 1);
        if let Some(victim) = victim {
            if let Some(rid) = self.runqueues[victim].pop_back() {
                self.runqueues[core].push_back(rid);
                self.stats.migrations += 1;
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.record(TraceEvent::Migration {
                        ts: self.queue.now(),
                        rid: rid as u64,
                        from_core: victim as u32,
                        to_core: core as u32,
                    });
                }
            }
        }
    }

    /// Whether contention easing is currently suspended. With an active
    /// guard ladder, the bottom rung (stock) suspends it outright; on the
    /// upper rungs each displacement decision still defers to the live
    /// prediction-error signal (the ladder's own counter-noise input), so
    /// storm-garbage predictions cannot displace requests during the
    /// window-plus-dwell lag before the ladder reacts. Unlike the
    /// one-shot gate this clears as soon as the error subsides. Without a
    /// ladder the one-shot prediction-confidence gate decides.
    fn easing_gated(&self) -> bool {
        if let Some(guard) = &self.guard {
            if guard.policy.ladder {
                // Stock and every overload rung below it suspend easing.
                if guard.ladder.rung().index() >= LadderRung::Stock.index() {
                    return true;
                }
                return self.pred_err_primed && self.pred_err > guard.policy.health.noise_ref;
            }
        }
        self.cfg.easing_error_gate.is_some() && self.gate_engaged
    }

    /// Whether the health ladder currently freezes predictor training
    /// (the middle and bottom rungs: measurements are too unhealthy to
    /// learn from).
    fn predictions_frozen(&self) -> bool {
        self.guard
            .as_ref()
            .is_some_and(|g| g.policy.ladder && g.ladder.rung() != LadderRung::Easing)
    }

    /// Dequeues the next request for `core`, shedding CoDel casualties on
    /// the way. With no shed policy this is exactly one candidate pick.
    fn pick_next(&mut self, core: usize) -> Option<usize> {
        loop {
            let rid = self.pick_candidate(core)?;
            if self.codel_passes(core, rid) {
                return Some(rid);
            }
            self.shed_dequeued(rid);
        }
    }

    /// CoDel at dequeue: compares the dequeued request's queue sojourn
    /// against the shed policy's target, dropping one request per
    /// interval once sojourns have stayed above target for a full
    /// interval. The guard ladder's shed rung halves the target.
    fn codel_passes(&mut self, core: usize, rid: usize) -> bool {
        let Some(shed) = self.cfg.shed else {
            return true;
        };
        let now = self.queue.now();
        let q = self.qidx(core);
        let queued_at = self.live[rid]
            .as_ref()
            .expect("dequeued request is live")
            .queued_at;
        let sojourn = now.saturating_sub(queued_at);
        let target = if self.shed_rung_active() {
            Cycles::new(shed.target.get() / 2)
        } else {
            shed.target
        };
        if sojourn <= target {
            self.codel_above[q] = None;
            return true;
        }
        match self.codel_above[q] {
            None => {
                self.codel_above[q] = Some(now);
                true
            }
            Some(since) if now.saturating_sub(since) >= shed.interval => {
                self.codel_above[q] = Some(now);
                false
            }
            Some(_) => true,
        }
    }

    /// Terminal CoDel shed of an already-dequeued request. Never reached
    /// in closed loop (the shed policy requires open-loop arrivals), so
    /// no respawn — and therefore no factory — is needed on this path.
    fn shed_dequeued(&mut self, rid: usize) {
        let now = self.queue.now();
        self.stats.codel_shed += 1;
        let lr = self.live[rid].take().expect("shed request was live");
        self.stats.wasted_cycles += lr.cum_cycles;
        self.push_failed(FailedRequest {
            id: lr.id,
            app: lr.request.app,
            class: lr.request.class,
            arrived_at: lr.arrived_at,
            failed_at: now,
            reason: FailReason::CodelShed,
        });
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(TraceEvent::RequestFailed {
                ts: now,
                rid: rid as u64,
                reason: FailReason::CodelShed.label().into(),
            });
        }
    }

    /// The §5.2 selection policy, applied to `core`'s queue (the shared
    /// central queue under cFCFS).
    fn pick_candidate(&mut self, core: usize) -> Option<usize> {
        let q = self.qidx(core);
        match self.cfg.scheduler.clone() {
            SchedulerPolicy::Stock => self.runqueues[q].pop_front(),
            SchedulerPolicy::ContentionEasing {
                high_usage_threshold,
                ..
            } => {
                if self.easing_gated() {
                    // vaEWMA error exceeds the gate: fall back to stock
                    // selection until prediction confidence recovers.
                    self.stats.easing_gate_fallbacks += 1;
                    return self.runqueues[q].pop_front();
                }
                if self.any_other_core_high(core, high_usage_threshold) {
                    // Pick the non-high request closest to the head.
                    let pos = self.runqueues[q]
                        .iter()
                        .position(|&rid| !self.is_high(rid, high_usage_threshold));
                    match pos {
                        Some(p) => self.runqueues[q].remove(p),
                        // No suitable request: give up, schedule normally.
                        None => self.runqueues[q].pop_front(),
                    }
                } else {
                    self.runqueues[q].pop_front()
                }
            }
        }
    }

    fn is_high(&self, rid: usize, threshold: f64) -> bool {
        self.live[rid]
            .as_ref()
            .and_then(|lr| lr.predictor.predict())
            .is_some_and(|p| p >= threshold)
    }

    fn any_other_core_high(&self, core: usize, threshold: f64) -> bool {
        self.cores.iter().enumerate().any(|(c, state)| {
            c != core
                && state
                    .running
                    .is_some_and(|rid| self.is_high(rid, threshold))
        })
    }

    fn on_quantum(&mut self, core: usize, now: Cycles) {
        let Some(rid) = self.cores[core].running else {
            return;
        };
        if self.runqueues[self.qidx(core)].is_empty() {
            // Nothing to rotate to: extend the quantum.
            self.cores[core].quantum_epoch += 1;
            let epoch = self.cores[core].quantum_epoch;
            self.queue
                .schedule_after(self.cfg.quantum, Event::Quantum { core, epoch });
            return;
        }
        // Context switch: sample, rotate, dispatch.
        self.cs_sample(core, rid, now);
        self.cores[core].running = None;
        self.stats.context_switches += 1;
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(TraceEvent::SliceEnd {
                ts: now,
                core: core as u32,
                rid: rid as u64,
            });
            sink.record(TraceEvent::ContextSwitch {
                ts: now,
                core: core as u32,
                from: rid as u64,
                reason: SwitchReason::Quantum,
            });
        }
        let q = self.qidx(core);
        let gen = {
            let req = self.live[rid].as_mut().expect("rotated request is live");
            req.queued_at = now;
            req.attempt
        };
        self.runqueues[q].push_back(rid);
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(TraceEvent::QueueEnter {
                ts: now,
                rid: rid as u64,
                queue: q as u32,
                attempt: gen,
            });
        }
        self.schedule_next_on(core);
    }

    fn on_resched(&mut self, core: usize, now: Cycles) {
        let SchedulerPolicy::ContentionEasing {
            resched_interval,
            high_usage_threshold,
            ..
        } = self.cfg.scheduler.clone()
        else {
            return;
        };
        // Always re-arm first.
        self.cores[core].resched_epoch += 1;
        let epoch = self.cores[core].resched_epoch;
        self.queue
            .schedule_after(resched_interval, Event::Resched { core, epoch });

        let Some(rid) = self.cores[core].running else {
            return;
        };
        if self.easing_gated() {
            // Prediction confidence too low: behave exactly like the stock
            // scheduler at this opportunity — no displacement, no sample.
            self.stats.easing_gate_fallbacks += 1;
            return;
        }
        // Avoid unnecessary re-scheduling: the current request stays unless
        // it is in a high-usage period while another core is too.
        if !self.is_high(rid, high_usage_threshold)
            || !self.any_other_core_high(core, high_usage_threshold)
        {
            return;
        }
        let q = self.qidx(core);
        let Some(pos) = self.runqueues[q]
            .iter()
            .position(|&r| !self.is_high(r, high_usage_threshold))
        else {
            return; // no contention-easing opportunity: current resumes
        };
        let next = self.runqueues[q].remove(pos).expect("position valid");
        self.cs_sample(core, rid, now);
        self.cores[core].running = None;
        self.stats.context_switches += 1;
        self.stats.resched_decisions += 1;
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(TraceEvent::SliceEnd {
                ts: now,
                core: core as u32,
                rid: rid as u64,
            });
            sink.record(TraceEvent::ContextSwitch {
                ts: now,
                core: core as u32,
                from: rid as u64,
                reason: SwitchReason::Eased,
            });
            sink.record(TraceEvent::ContentionEasing {
                ts: now,
                core: core as u32,
                displaced: rid as u64,
                chosen: next as u64,
            });
        }
        // The paper keeps the displaced current request at the queue head.
        self.runqueues[q].push_front(rid);
        let gen = self.live[rid]
            .as_ref()
            .expect("displaced request is live")
            .attempt;
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(TraceEvent::QueueEnter {
                ts: now,
                rid: rid as u64,
                queue: q as u32,
                attempt: gen,
            });
        }
        self.dispatch(core, next);
    }

    // ----- open-loop clients and streaming ----------------------------------

    /// Queue index serving `core`: per-core under dFCFS and the default
    /// placement, the one shared queue under cFCFS.
    fn qidx(&self, core: usize) -> usize {
        if self.cfg.queue_discipline == Some(QueueDiscipline::Cfcfs) {
            0
        } else {
            core
        }
    }

    /// Total requests turned away or abandoned so far — the reject-rate
    /// numerator of the guard ladder's overload-pressure signal.
    /// Involuntary rejections — the demand-vs-capacity signal feeding
    /// the health ladder's overload pressure. Brownout rejections are
    /// deliberately excluded: they are the ladder's *own* action, and
    /// echoing them back as input locks the ladder into its brownout
    /// rung long after real pressure has subsided (the rejections it
    /// causes sustain the score that keeps it rejecting).
    fn rejected_total(&self) -> u64 {
        self.stats.admission_rejections
            + self.stats.deadline_aborts
            + self.stats.codel_shed
            + self.stats.client_timeouts
    }

    /// Deepest runqueue occupancy as a fraction of the admission bound —
    /// the queue-pressure input of the guard ladder's overload band.
    /// Zero when queues are unbounded (no overload policy).
    fn deepest_queue_frac(&self) -> f64 {
        let Some(overload) = self.cfg.overload else {
            return 0.0;
        };
        if overload.max_runqueue == usize::MAX {
            return 0.0;
        }
        if self.cfg.queue_discipline == Some(QueueDiscipline::Cfcfs) {
            let running = self.cores.iter().filter(|c| c.running.is_some()).count();
            let bound = overload.max_runqueue.saturating_mul(self.cores.len());
            return ((self.runqueues[0].len() + running) as f64 / bound as f64).clamp(0.0, 1.0);
        }
        let deepest = (0..self.cores.len())
            .map(|c| self.runqueues[c].len() + usize::from(self.cores[c].running.is_some()))
            .max()
            .unwrap_or(0);
        (deepest as f64 / overload.max_runqueue as f64).clamp(0.0, 1.0)
    }

    /// The client's patience for the current attempt ran out: retry with
    /// capped exponential backoff plus deterministic hash jitter, or give
    /// up for good once retries are exhausted.
    fn on_client_timeout(&mut self, rid: usize, now: Cycles, factory: &mut dyn RequestFactory) {
        let client = self.cfg.client.expect("client timeout requires a policy");
        self.stats.client_timeouts += 1;
        let attempt = self.live[rid]
            .as_ref()
            .expect("timed-out request is live")
            .attempt;
        if attempt >= client.max_retries {
            self.fail_request(rid, now, FailReason::ClientTimeout, factory);
            return;
        }
        self.abort_attempt(rid, now);
        let lr = self.live[rid].as_mut().expect("aborted request is live");
        lr.attempt += 1;
        let gen = lr.attempt;
        self.stats.client_retries += 1;
        // Hash jitter, not a stream draw: retry timing must not perturb
        // the engine or fault streams, so retries-off runs stay
        // bit-identical to builds that predate the client model.
        let jitter = hash_mix(self.cfg.seed ^ ((rid as u64) << 16) ^ u64::from(gen)) as f64
            / u64::MAX as f64;
        let backoff = client.retry_backoff.as_f64()
            * 2f64.powi(attempt.min(16) as i32)
            * (1.0 + 0.5 * jitter);
        let backoff = Cycles::new(backoff.max(1.0) as u64);
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(TraceEvent::RetryScheduled {
                ts: now,
                rid: rid as u64,
                attempt: gen,
                backoff,
                client: true,
            });
        }
        self.queue
            .schedule_after(backoff, Event::ClientResubmit { rid, gen });
    }

    /// The client resubmits a timed-out request: a fresh patience timer
    /// arms and the request re-enters admission from the top.
    fn on_client_resubmit(&mut self, rid: usize, factory: &mut dyn RequestFactory) {
        let client = self.cfg.client.expect("client resubmit requires a policy");
        let gen = self.live[rid]
            .as_ref()
            .expect("resubmitted request is live")
            .attempt;
        self.queue
            .schedule_after(client.timeout, Event::ClientTimeout { rid, gen });
        self.try_admit(rid, 0, factory);
    }

    /// Client abandons the current attempt: the request is pulled off
    /// whatever core or queue holds it and its partially-executed state
    /// is discarded — the consumed CPU cycles are wasted work, which is
    /// exactly the amplification mechanism of a metastable retry storm.
    /// The id stays live awaiting resubmission; its predictor and noise
    /// stream survive (they belong to the request, not the attempt).
    fn abort_attempt(&mut self, rid: usize, now: Cycles) {
        for c in 0..self.cores.len() {
            if self.cores[c].running == Some(rid) {
                self.cores[c].running = None;
                self.rates_dirty = true;
                self.stats.context_switches += 1;
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.record(TraceEvent::SliceEnd {
                        ts: now,
                        core: c as u32,
                        rid: rid as u64,
                    });
                }
                self.schedule_next_on(c);
                break;
            }
            if let Some(pos) = self.runqueues[c].iter().position(|&r| r == rid) {
                self.runqueues[c].remove(pos);
                break;
            }
        }
        let lr = self.live[rid].as_mut().expect("aborted request is live");
        self.stats.wasted_cycles += lr.cum_cycles;
        lr.stage_idx = 0;
        lr.ins_in_stage = 0.0;
        lr.phase_idx = 0;
        lr.next_syscall = 0;
        lr.timeline = Timeline::new();
        lr.accum = SamplePeriod::default();
        lr.accum_injection = None;
        lr.cum_cycles = 0.0;
        lr.cum_ins = 0.0;
        lr.syscalls.clear();
        lr.pending_transition = None;
        lr.last_syscall = None;
        lr.stage_marks.clear();
        lr.queued_at = now;
    }

    /// Records a completion, streaming it into the completion sink when
    /// one is attached (bounded-memory mode) or retaining it otherwise.
    fn push_completed(&mut self, request: CompletedRequest) {
        self.n_completed += 1;
        match self.completions.as_deref_mut() {
            Some(sink) => sink.on_complete(&request),
            None => self.completed.push(request),
        }
    }

    /// Records a failure, streaming or retaining it like
    /// [`Self::push_completed`].
    fn push_failed(&mut self, request: FailedRequest) {
        self.n_failed += 1;
        match self.completions.as_deref_mut() {
            Some(sink) => sink.on_fail(&request),
            None => self.failed.push(request),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use rbv_workloads::{factory_for, AppId, Mbench, Tpcc, TpccTxn, WebServer};

    fn small_run(cfg: SimConfig, app: AppId, n: usize) -> RunResult {
        let mut factory = factory_for(app, 7, 0.05);
        run_simulation(cfg, factory.as_mut(), n).expect("valid config")
    }

    #[test]
    fn completes_the_requested_number() {
        let r = small_run(SimConfig::paper_default(), AppId::Tpcc, 20);
        assert_eq!(r.completed.len(), 20);
        assert!(r.total_time > Cycles::ZERO);
    }

    #[test]
    fn unthrottled_power_model_is_schedule_identical() {
        // The power model observes (energy, temperature) without acting
        // until something clamps frequency. The paper-default policy never
        // throttles without a fault (hottest steady state 89 °C < 95 °C
        // cap), so a powered run executes the exact same schedule as a
        // power-off run — completions, timelines, and total time all equal.
        let off = small_run(SimConfig::paper_default(), AppId::Tpcc, 25);
        let cfg = SimConfig {
            power: Some(rbv_power::PowerPolicy::paper_default()),
            ..SimConfig::paper_default()
        };
        let on = small_run(cfg, AppId::Tpcc, 25);
        assert_eq!(off.completed, on.completed);
        assert_eq!(off.failed, on.failed);
        assert_eq!(off.total_time, on.total_time);
        assert_eq!(off.stats.energy, None);
        let energy = on.stats.energy.expect("powered run accounts energy");
        assert!(energy.total_uw_cycles > 0);
        assert_eq!(
            energy.core_uw_cycles.iter().sum::<u128>(),
            energy.total_uw_cycles,
            "energy conservation is exact"
        );
        assert_eq!(energy.throttle_engages, 0);
        assert_eq!(energy.dvfs_transitions, 0);
        assert!(
            energy.max_temp_milli_c > 45_000,
            "cores heated above ambient"
        );
    }

    #[test]
    fn powered_runs_are_deterministic() {
        let cfg = SimConfig {
            power: Some(rbv_power::PowerPolicy::paper_default()),
            thermal_faults: Some(rbv_power::ThermalFaults::storm(9)),
            ..SimConfig::paper_default()
        };
        let a = small_run(cfg.clone(), AppId::Tpcc, 20);
        let b = small_run(cfg, AppId::Tpcc, 20);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.stats.energy, b.stats.energy);
    }

    /// A power policy aggressive enough that a thermal storm reliably trips
    /// the firmware throttle within a short test run.
    fn touchy_power() -> rbv_power::PowerPolicy {
        rbv_power::PowerPolicy {
            tau: Cycles::from_micros(200),
            throttle_cap_milli_c: 60_000,
            throttle_release_milli_c: 50_000,
            ..rbv_power::PowerPolicy::paper_default()
        }
    }

    #[test]
    fn thermal_storm_trips_the_firmware_throttle() {
        let cfg = SimConfig {
            power: Some(touchy_power()),
            thermal_faults: Some(rbv_power::ThermalFaults::storm(42)),
            ..SimConfig::paper_default()
        };
        let r = small_run(cfg, AppId::Tpcc, 40);
        assert_eq!(r.completed.len(), 40);
        let energy = r.stats.energy.expect("powered run accounts energy");
        assert!(energy.throttle_engages >= 1, "storm must throttle");
        assert_eq!(
            energy.throttle_engages,
            energy.throttle_releases + energy.throttled_final,
            "throttle conservation"
        );
        assert!(
            energy.dvfs_transitions >= 1,
            "clamping is a DVFS transition"
        );
        assert_eq!(
            energy.core_uw_cycles.iter().sum::<u128>(),
            energy.total_uw_cycles
        );
    }

    #[test]
    fn power_capping_ladder_engages_under_storm() {
        // Defended: guard power-capping rungs react to smoothed thermal
        // pressure well before the firmware cap.
        let governor = GovernorPolicy {
            power_cap: Some(rbv_guard::PowerCapPolicy {
                engage_above: 0.3,
                recover_below: 0.2,
                dwell: Cycles::from_micros(250),
                ..rbv_guard::PowerCapPolicy::default()
            }),
            ..GovernorPolicy::default()
        };
        let cfg = SimConfig {
            power: Some(touchy_power()),
            thermal_faults: Some(rbv_power::ThermalFaults::storm(42)),
            governor: Some(governor),
            ..SimConfig::paper_default()
        };
        let r = small_run(cfg, AppId::Tpcc, 40);
        assert_eq!(r.completed.len(), 40, "parking must not strand requests");
        let energy = r.stats.energy.expect("powered run accounts energy");
        assert!(
            energy.power_rung_transitions >= 1,
            "pressure must move the power ladder"
        );
        // The invariant monitor ran the energy/frequency/throttle checks
        // every window and none fired.
        assert_eq!(
            r.stats.invariant_violations.iter().sum::<u64>(),
            0,
            "all guard invariants hold under the storm"
        );
    }

    #[test]
    fn counters_are_conserved() {
        // Total instructions in timelines ~ total instructions generated
        // (modulo observer-effect injection/compensation).
        let mut factory = Tpcc::new(3, 0.05);
        let mut factory2 = Tpcc::new(3, 0.05);
        let expected: f64 = (0..10)
            .map(|_| factory2.next_request().total_instructions().as_f64())
            .sum();
        let r = run_simulation(SimConfig::paper_default(), &mut factory, 10).unwrap();
        let measured: f64 = r
            .completed
            .iter()
            .map(|c| c.timeline.total_instructions())
            .sum();
        let rel = (measured - expected).abs() / expected;
        assert!(rel < 0.02, "measured {measured} expected {expected}");
    }

    #[test]
    fn request_cpi_reflects_profiles() {
        let r = small_run(SimConfig::paper_default().serial(), AppId::Tpcc, 10);
        for c in &r.completed {
            let cpi = c.request_cpi().expect("has instructions");
            assert!((0.8..6.0).contains(&cpi), "cpi {cpi}");
        }
    }

    #[test]
    fn serial_mode_runs_one_at_a_time() {
        let r = small_run(SimConfig::paper_default().serial(), AppId::WebServer, 10);
        // With concurrency 1, completions are strictly ordered by arrival.
        for w in r.completed.windows(2) {
            assert!(w[0].finished_at <= w[1].arrived_at);
        }
    }

    #[test]
    fn concurrent_execution_inflates_cpi() {
        // Multicore obfuscation (Figure 1): the same workload seeded the
        // same way gets worse tail CPI when run 8-way concurrent.
        let mut f1 = Tpcc::new(11, 0.05);
        let mut f2 = Tpcc::new(11, 0.05);
        let serial = run_simulation(SimConfig::paper_default().serial(), &mut f1, 30).unwrap();
        let conc = run_simulation(SimConfig::paper_default(), &mut f2, 30).unwrap();
        let p90 =
            |r: &RunResult| rbv_core::stats::percentile(&r.request_cpis(), 0.9).expect("cpis");
        assert!(
            p90(&conc) > p90(&serial),
            "serial p90 {} vs concurrent p90 {}",
            p90(&serial),
            p90(&conc)
        );
    }

    #[test]
    fn syscalls_are_recorded_in_order() {
        let r = small_run(SimConfig::paper_default().serial(), AppId::WebServer, 5);
        for c in &r.completed {
            assert!(!c.syscalls.is_empty());
            for w in c.syscalls.windows(2) {
                assert!(w[0].request_ins <= w[1].request_ins);
            }
        }
    }

    #[test]
    fn interrupt_sampling_creates_fine_periods() {
        let cfg = SimConfig::paper_default()
            .serial()
            .with_interrupt_sampling(10);
        let mut f = WebServer::new(5, 1.0);
        let r = run_simulation(cfg, &mut f, 5).unwrap();
        assert!(r.stats.samples_interrupt > 0);
        for c in &r.completed {
            assert!(
                c.timeline.len() >= 3,
                "expected several periods, got {}",
                c.timeline.len()
            );
        }
    }

    #[test]
    fn syscall_sampling_prefers_inkernel_context() {
        let cfg = SimConfig::paper_default()
            .serial()
            .with_syscall_sampling(10, 1_000);
        let mut f = WebServer::new(5, 1.0);
        let r = run_simulation(cfg, &mut f, 10).unwrap();
        // The web server is syscall-dense: backup interrupts should be rare.
        assert!(
            r.stats.samples_inkernel > 10 * r.stats.samples_interrupt,
            "inkernel {} interrupt {}",
            r.stats.samples_inkernel,
            r.stats.samples_interrupt
        );
    }

    #[test]
    fn backup_interrupt_covers_quiet_stretches() {
        // Mbench-Spin makes no syscalls at all: every sample beyond context
        // switches must come from the backup interrupt.
        let cfg = SimConfig::paper_default()
            .serial()
            .with_syscall_sampling(10, 100);
        let mut f = Mbench::spin(30_000_000);
        let r = run_simulation(cfg, &mut f, 3).unwrap();
        assert!(
            r.stats.samples_interrupt > 50,
            "interrupt samples {}",
            r.stats.samples_interrupt
        );
    }

    #[test]
    fn transition_records_capture_writev_increase() {
        let cfg = SimConfig::paper_default()
            .serial()
            .with_syscall_sampling(2, 1_000);
        let mut f = WebServer::new(5, 1.0);
        let r = run_simulation(cfg, &mut f, 60).unwrap();
        let table = r.transition_table(5);
        let writev = table
            .iter()
            .find(|(n, ..)| *n == SyscallName::Writev)
            .expect("writev observed");
        assert!(
            writev.1 > 0.5,
            "writev should signal a CPI increase, got {}",
            writev.1
        );
    }

    #[test]
    fn multi_stage_requests_complete() {
        let r = small_run(SimConfig::paper_default(), AppId::Rubis, 12);
        assert_eq!(r.completed.len(), 12);
        for c in &r.completed {
            // All three stages' instructions are attributed.
            assert!(c.timeline.total_instructions() > 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut f = Tpcc::new(9, 0.05);
            run_simulation(SimConfig::paper_default(), &mut f, 10).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.completed.len(), b.completed.len());
        for (x, y) in a.completed.iter().zip(&b.completed) {
            assert_eq!(x.class, y.class);
            assert_eq!(x.finished_at, y.finished_at);
            assert_eq!(x.timeline, y.timeline);
        }
    }

    #[test]
    fn high_usage_accounting_tracks_threshold() {
        let mut cfg = SimConfig::paper_default();
        cfg.measure_threshold = Some(0.0); // everything counts as high
        let mut f = Tpcc::new(2, 0.05);
        let r = run_simulation(cfg, &mut f, 10).unwrap();
        assert!(r.stats.busy_cycles > 0.0);
        assert!((r.stats.high_usage_fraction_at_least(1) - 1.0).abs() < 1e-9);

        let mut cfg = SimConfig::paper_default();
        cfg.measure_threshold = Some(f64::INFINITY); // nothing is high
        let mut f = Tpcc::new(2, 0.05);
        let r = run_simulation(cfg, &mut f, 10).unwrap();
        assert_eq!(r.stats.high_usage_fraction_at_least(1), 0.0);
    }

    #[test]
    fn contention_easing_config_runs() {
        let mut cfg = SimConfig::paper_default();
        cfg.scheduler = SchedulerPolicy::ContentionEasing {
            resched_interval: Cycles::from_millis(5),
            high_usage_threshold: 1e-4,
            alpha: 0.6,
        };
        cfg.sampling = SamplingPolicy::Interrupt {
            period: Cycles::from_micros(100),
        };
        let mut f = Tpcc::new(4, 0.05);
        let r = run_simulation(cfg, &mut f, 15).unwrap();
        assert_eq!(r.completed.len(), 15);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = SimConfig::paper_default();
        cfg.concurrency = 0;
        let mut f = Tpcc::new(1, 0.05);
        assert!(run_simulation(cfg, &mut f, 1).is_err());
    }

    #[test]
    fn latency_and_cpu_time_are_consistent() {
        let r = small_run(SimConfig::paper_default(), AppId::Tpcc, 10);
        for c in &r.completed {
            // CPU time cannot exceed wall latency.
            assert!(
                c.cpu_cycles() <= c.latency().as_f64() * 1.001,
                "cpu {} latency {}",
                c.cpu_cycles(),
                c.latency()
            );
        }
    }

    #[test]
    fn tpcc_txn_mix_survives_the_engine() {
        let r = small_run(SimConfig::paper_default(), AppId::Tpcc, 120);
        let new_orders = r
            .of_class(rbv_workloads::RequestClass::TpccTxn(TpccTxn::NewOrder))
            .len();
        assert!((30..75).contains(&new_orders), "new orders {new_orders}");
    }
}

#[cfg(test)]
mod fault_and_overload_tests {
    use super::*;
    use crate::config::{ArrivalProcess, OverloadPolicy, SimConfig};
    use rbv_workloads::{Tpcc, WebServer};

    #[test]
    fn permissive_overload_policy_is_bit_identical_to_none() {
        // With unbounded queues and no deadline, the admission path takes
        // the same decisions (and draws nothing from the fault stream) as
        // the unprotected engine: results match exactly.
        let run = |overload: Option<OverloadPolicy>| {
            let mut cfg = SimConfig::paper_default().with_syscall_sampling(10, 1_000);
            cfg.overload = overload;
            let mut f = Tpcc::new(33, 0.05);
            run_simulation(cfg, &mut f, 15).expect("valid")
        };
        let baseline = run(None);
        let permissive = run(Some(OverloadPolicy {
            max_runqueue: usize::MAX,
            deadline: None,
            max_retries: 5,
            retry_backoff: Cycles::from_micros(100),
        }));
        assert_eq!(baseline, permissive);
        assert!(permissive.failed.is_empty());
    }

    #[test]
    fn unengaged_easing_gate_is_bit_identical_to_ungated() {
        let run = |gate: Option<f64>| {
            let mut cfg = SimConfig::paper_default().with_interrupt_sampling(100);
            cfg.scheduler = SchedulerPolicy::ContentionEasing {
                resched_interval: Cycles::from_millis(5),
                high_usage_threshold: 1e-4,
                alpha: 0.6,
            };
            cfg.easing_error_gate = gate;
            let mut f = Tpcc::new(4, 0.05);
            run_simulation(cfg, &mut f, 15).expect("valid")
        };
        let ungated = run(None);
        let gated = run(Some(f64::MAX));
        // The gate can never engage at an infinite threshold, so every
        // scheduling decision — and therefore the full result — matches.
        assert_eq!(ungated, gated);
        assert_eq!(gated.stats.easing_gate_fallbacks, 0);
    }

    #[test]
    fn lost_interrupts_flag_low_confidence_samples() {
        let mut cfg = SimConfig::paper_default()
            .serial()
            .with_interrupt_sampling(20);
        cfg.faults.lost_interrupt_prob = 0.3;
        let mut f = WebServer::new(5, 1.0);
        let r = run_simulation(cfg, &mut f, 10).expect("valid");
        assert!(r.stats.samples_lost > 0, "lost {}", r.stats.samples_lost);
        assert!(
            r.stats.samples_low_confidence > 0,
            "low confidence {}",
            r.stats.samples_low_confidence
        );
        // Degradation, not corruption: the run still completes everything.
        assert_eq!(r.completed.len(), 10);
    }

    #[test]
    fn counter_overflows_are_zeroed_and_flagged() {
        let mut cfg = SimConfig::paper_default()
            .serial()
            .with_interrupt_sampling(20);
        cfg.faults.counter_overflow_prob = 0.2;
        let mut f = Tpcc::new(6, 0.05);
        let r = run_simulation(cfg, &mut f, 10).expect("valid");
        assert!(r.stats.counter_overflows > 0);
        assert!(r.stats.samples_low_confidence >= r.stats.counter_overflows);
    }

    #[test]
    fn starvation_windows_degrade_to_backup_interrupts() {
        // Extends `backup_interrupt_covers_quiet_stretches`: there the
        // workload makes no syscalls; here the workload is syscall-dense
        // but injected starvation suppresses the syscall sampling path, so
        // the backup interrupt timer must pick up the slack.
        let run = |prob: f64| {
            let mut cfg = SimConfig::paper_default()
                .serial()
                .with_syscall_sampling(5, 25);
            cfg.faults.syscall_starvation_prob = prob;
            cfg.faults.syscall_starvation_window = Cycles::from_millis(1);
            let mut f = WebServer::new(5, 1.0);
            run_simulation(cfg, &mut f, 20).expect("valid")
        };
        let healthy = run(0.0);
        let starved = run(0.5);
        assert!(starved.stats.starvation_windows > 0);
        assert!(
            starved.stats.samples_interrupt > healthy.stats.samples_interrupt,
            "backup must cover starved stretches: {} vs healthy {}",
            starved.stats.samples_interrupt,
            healthy.stats.samples_interrupt
        );
        assert!(
            starved.stats.samples_inkernel < healthy.stats.samples_inkernel,
            "starvation must suppress syscall samples: {} vs healthy {}",
            starved.stats.samples_inkernel,
            healthy.stats.samples_inkernel
        );
    }

    #[test]
    fn deadlines_abort_straggling_requests() {
        let deadline = Cycles::from_micros(150);
        let mut cfg = SimConfig::paper_default();
        cfg.overload = Some(OverloadPolicy {
            max_runqueue: usize::MAX,
            deadline: Some(deadline),
            max_retries: 0,
            retry_backoff: Cycles::from_micros(100),
        });
        let mut f = Tpcc::new(7, 0.05);
        let r = run_simulation(cfg, &mut f, 20).expect("valid");
        assert!(r.stats.deadline_aborts > 0);
        assert_eq!(r.completed.len() + r.failed.len(), 20);
        for fr in &r.failed {
            assert_eq!(fr.reason, FailReason::DeadlineAbort);
            assert!(fr.failed_at.saturating_sub(fr.arrived_at) >= deadline);
        }
        // Every completion beat its deadline.
        for c in &r.completed {
            assert!(c.latency() <= deadline);
        }
    }

    #[test]
    fn bounded_admission_sheds_under_open_loop_overload() {
        let mut cfg = SimConfig::paper_default();
        cfg.arrivals = ArrivalProcess::OpenPoisson {
            mean_interarrival: Cycles::from_micros(6),
        };
        cfg.overload = Some(OverloadPolicy {
            max_runqueue: 2,
            deadline: None,
            max_retries: 1,
            retry_backoff: Cycles::from_micros(50),
        });
        let mut f = Tpcc::new(13, 0.05);
        let r = run_simulation(cfg, &mut f, 40).expect("valid");
        assert!(r.stats.admission_rejections > 0);
        assert!(r.stats.admission_retries > 0);
        assert!(r.stats.load_shed > 0, "shed {}", r.stats.load_shed);
        assert_eq!(r.completed.len() + r.failed.len(), 40);
        for fr in &r.failed {
            assert_eq!(fr.reason, FailReason::AdmissionShed);
        }
    }

    /// End-to-end label flow for the overload rungs: a guarded run driven
    /// into sustained admission pressure walks the ladder below `stock`,
    /// and the trace stream carries the `shed`/`brownout` labels that the
    /// Perfetto exporter passes through verbatim.
    #[test]
    fn traced_overload_descent_emits_overload_rung_transitions() {
        let mut cfg = SimConfig::paper_default();
        cfg.arrivals = ArrivalProcess::OpenPoisson {
            mean_interarrival: Cycles::from_micros(6),
        };
        cfg.overload = Some(OverloadPolicy {
            max_runqueue: 2,
            deadline: None,
            max_retries: 1,
            retry_backoff: Cycles::from_micros(50),
        });
        let mut governor = GovernorPolicy::default();
        // The default 2 ms dwell spaces rungs further apart than this
        // short run; a tighter dwell lets the descent reach brownout.
        governor.health.dwell = Cycles::from_micros(300);
        cfg.governor = Some(governor);
        let mut sink = rbv_telemetry::MemorySink::new();
        let mut f = Tpcc::new(13, 0.05);
        let r = run_simulation_traced(cfg, &mut f, 800, &mut sink).expect("valid");
        assert!(r.stats.admission_rejections > 0);
        let moves: Vec<(String, String)> = sink
            .into_events()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::HealthTransition { from, to, .. } => Some((from, to)),
                _ => None,
            })
            .collect();
        assert!(
            moves.contains(&("stock".to_string(), "shed".to_string())),
            "no stock->shed transition in {moves:?}"
        );
        assert!(
            moves.contains(&("shed".to_string(), "brownout".to_string())),
            "no shed->brownout transition in {moves:?}"
        );
        let known = ["easing", "frozen_predictions", "stock", "shed", "brownout"];
        for (from, to) in &moves {
            assert!(known.contains(&from.as_str()), "unknown rung label {from}");
            assert!(known.contains(&to.as_str()), "unknown rung label {to}");
        }
        assert_eq!(r.stats.health_transitions, moves.len() as u64);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let run = || {
            let mut cfg = SimConfig::paper_default().with_interrupt_sampling(50);
            cfg.faults.lost_interrupt_prob = 0.2;
            cfg.faults.counter_skid_sigma = 0.1;
            cfg.faults.counter_overflow_prob = 0.05;
            let mut f = Tpcc::new(9, 0.05);
            run_simulation(cfg, &mut f, 12).expect("valid")
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod arrival_and_partition_tests {
    use super::*;
    use crate::config::{ArrivalProcess, SimConfig};
    use rbv_workloads::Tpcc;

    #[test]
    fn open_loop_arrivals_complete_and_queue() {
        let mut cfg = SimConfig::paper_default();
        // Arrivals far faster than service: a queue must form, and
        // latencies must exceed CPU times by the queueing delay.
        cfg.arrivals = ArrivalProcess::OpenPoisson {
            mean_interarrival: Cycles::from_micros(6),
        };
        let mut f = Tpcc::new(13, 0.05);
        let r = run_simulation(cfg, &mut f, 30).expect("valid");
        assert_eq!(r.completed.len(), 30);
        let queued = r
            .completed
            .iter()
            .filter(|c| c.latency().as_f64() > c.cpu_cycles() * 1.5)
            .count();
        assert!(queued > 5, "overloaded open loop should queue ({queued})");
    }

    #[test]
    fn light_open_loop_rarely_queues() {
        let mut cfg = SimConfig::paper_default();
        cfg.arrivals = ArrivalProcess::OpenPoisson {
            mean_interarrival: Cycles::from_millis(4),
        };
        let mut f = Tpcc::new(13, 0.05);
        let r = run_simulation(cfg, &mut f, 30).expect("valid");
        assert_eq!(r.completed.len(), 30);
        let unqueued = r
            .completed
            .iter()
            .filter(|c| c.latency().as_f64() < c.cpu_cycles() * 1.2)
            .count();
        assert!(
            unqueued > 20,
            "light load should mostly run directly ({unqueued})"
        );
    }

    #[test]
    fn open_loop_is_deterministic() {
        let run = || {
            let mut cfg = SimConfig::paper_default();
            cfg.arrivals = ArrivalProcess::OpenPoisson {
                mean_interarrival: Cycles::from_micros(200),
            };
            let mut f = Tpcc::new(14, 0.05);
            run_simulation(cfg, &mut f, 12).expect("valid")
        };
        let (a, b) = (run(), run());
        for (x, y) in a.completed.iter().zip(&b.completed) {
            assert_eq!(x.arrived_at, y.arrived_at);
            assert_eq!(x.finished_at, y.finished_at);
        }
    }

    #[test]
    fn static_partitioning_changes_contention_outcomes() {
        let run = |partition: bool| {
            let mut cfg = SimConfig::paper_default().with_interrupt_sampling(100);
            cfg.static_cache_partition = partition;
            let mut f = Tpcc::new(15, 0.1);
            run_simulation(cfg, &mut f, 25).expect("valid")
        };
        let shared = run(false);
        let partitioned = run(true);
        assert_eq!(partitioned.completed.len(), 25);
        // The policies must produce genuinely different performance.
        let mean = |r: &RunResult| {
            let c = r.request_cpis();
            c.iter().sum::<f64>() / c.len() as f64
        };
        assert!((mean(&shared) - mean(&partitioned)).abs() > 1e-3);
    }
}

#[cfg(test)]
mod affinity_tests {
    use super::*;
    use crate::config::SimConfig;
    use rbv_workloads::Rubis;

    #[test]
    fn affinity_pins_components_to_their_cores() {
        let mut cfg = SimConfig::paper_default();
        cfg.component_affinity = true;
        let mut f = Rubis::new(21, 0.2);
        let r = run_simulation(cfg, &mut f, 15).expect("valid");
        assert_eq!(r.completed.len(), 15);
        // All three tiers executed: every request carries the full socket
        // hand-off chain despite the pinning.
        for c in &r.completed {
            assert!(c.timeline.total_instructions() > 0.0);
        }
    }

    #[test]
    fn affinity_changes_placement_outcomes() {
        let run = |affinity: bool| {
            let mut cfg = SimConfig::paper_default().with_interrupt_sampling(100);
            cfg.component_affinity = affinity;
            let mut f = Rubis::new(22, 0.2);
            run_simulation(cfg, &mut f, 20).expect("valid")
        };
        let spread = run(false);
        let pinned = run(true);
        // Placement genuinely differs: completion times diverge.
        assert_ne!(
            spread.completed.last().unwrap().finished_at,
            pinned.completed.last().unwrap().finished_at
        );
    }
}

#[cfg(test)]
mod stealing_tests {
    use super::*;
    use crate::config::SimConfig;
    use rbv_workloads::{Tpcc, TpccTxn};

    /// A factory producing one giant request followed by many tiny ones:
    /// without migration the tiny ones can starve behind the giant's core.
    struct Skewed {
        inner: Tpcc,
        emitted: usize,
    }

    impl rbv_workloads::RequestFactory for Skewed {
        fn app(&self) -> rbv_workloads::AppId {
            rbv_workloads::AppId::Tpcc
        }

        fn next_request(&mut self) -> rbv_workloads::Request {
            self.emitted += 1;
            if self.emitted % 4 == 1 {
                self.inner.request_of_txn(TpccTxn::Delivery) // ~10x longer
            } else {
                self.inner.request_of_txn(TpccTxn::OrderStatus)
            }
        }
    }

    #[test]
    fn work_stealing_reduces_makespan_on_skewed_load() {
        let run = |stealing: bool| {
            let mut cfg = SimConfig::paper_default();
            cfg.work_stealing = stealing;
            cfg.concurrency = 12;
            let mut f = Skewed {
                inner: Tpcc::new(50, 0.2),
                emitted: 0,
            };
            run_simulation(cfg, &mut f, 40).expect("valid")
        };
        let without = run(false);
        let with = run(true);
        assert_eq!(with.completed.len(), 40);
        assert!(
            with.total_time <= without.total_time,
            "stealing should not lengthen the run: {} vs {}",
            with.total_time,
            without.total_time
        );
    }

    #[test]
    fn stealing_never_loses_requests() {
        let mut cfg = SimConfig::paper_default();
        cfg.work_stealing = true;
        cfg.concurrency = 20;
        let mut f = Tpcc::new(51, 0.05);
        let r = run_simulation(cfg, &mut f, 60).expect("valid");
        assert_eq!(r.completed.len(), 60);
        let mut ids: Vec<usize> = r.completed.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 60, "no duplicates or losses");
    }
}

#[cfg(test)]
mod bigram_policy_tests {
    use super::*;
    use crate::config::{SamplingPolicy, SimConfig};
    use rbv_workloads::WebServer;
    use std::collections::HashSet;

    #[test]
    fn pair_policy_samples_only_at_listed_bigrams() {
        // The web request's phase chain guarantees a (stat -> writev)
        // boundary; trigger exclusively on it.
        let mut cfg = SimConfig::paper_default();
        cfg.sampling = SamplingPolicy::TransitionSignalPairs {
            triggers: HashSet::from([(SyscallName::Stat, SyscallName::Writev)]),
            t_syscall_min: Cycles::new(1),
            t_backup_int: Cycles::from_millis(50),
        };
        let mut f = WebServer::new(61, 1.0);
        let r = run_simulation(cfg, &mut f, 40).expect("valid");
        // Roughly one trigger per request (plus context switches); far
        // fewer than the ~10 syscalls per request.
        let per_request = r.stats.samples_inkernel as f64 / 40.0;
        assert!(
            (1.5..4.0).contains(&per_request),
            "samples per request {per_request}"
        );
        // Transition records exist and carry the matching bigram.
        assert!(r
            .transitions
            .iter()
            .any(|t| t.prev_name == Some(SyscallName::Stat) && t.name == SyscallName::Writev));
    }

    #[test]
    fn transition_records_carry_previous_names() {
        let mut cfg = SimConfig::paper_default().with_syscall_sampling(2, 1_000);
        let mut f = WebServer::new(62, 1.0);
        let r = run_simulation(cfg.clone(), &mut f, 20).expect("valid");
        cfg.seed = 1;
        let with_prev = r
            .transitions
            .iter()
            .filter(|t| t.prev_name.is_some())
            .count();
        assert!(
            with_prev * 2 > r.transitions.len(),
            "most transitions should know their predecessor ({with_prev}/{})",
            r.transitions.len()
        );
    }
}

#[cfg(test)]
mod multi_machine_tests {
    use super::*;
    use crate::config::{MultiMachine, SimConfig};
    use rbv_mem::MachineSpec;
    use rbv_workloads::{Rubis, Tpcc};

    fn cluster_cfg(machines: usize, hop_micros: u64) -> SimConfig {
        let mut cfg = SimConfig::paper_default();
        cfg.machine = MachineSpec::xeon_5160_cluster(machines);
        cfg.multi_machine = Some(MultiMachine {
            machines,
            network_hop_delay: Cycles::from_micros(hop_micros),
        });
        cfg.concurrency = machines * 6;
        cfg
    }

    #[test]
    fn three_tier_rubis_runs_across_three_machines() {
        let mut f = Rubis::new(71, 0.2);
        let r = run_simulation(cluster_cfg(3, 50), &mut f, 20).expect("valid");
        assert_eq!(r.completed.len(), 20);
        for c in &r.completed {
            // Two inter-machine hops each way are pure latency: wall time
            // must exceed CPU time by at least the two hop delays.
            let slack = c.latency().as_f64() - c.cpu_cycles();
            assert!(
                slack >= 2.0 * Cycles::from_micros(50).as_f64() * 0.98,
                "hop delay missing: slack {slack}"
            );
        }
    }

    #[test]
    fn network_delay_lengthens_latency_not_cpu() {
        let run = |hop: u64| {
            let mut f = Rubis::new(72, 0.2);
            run_simulation(cluster_cfg(3, hop), &mut f, 15).expect("valid")
        };
        let fast_net = run(10);
        let slow_net = run(500);
        let mean_latency = |r: &RunResult| {
            r.completed
                .iter()
                .map(|c| c.latency().as_f64())
                .sum::<f64>()
                / r.completed.len() as f64
        };
        let mean_cpu = |r: &RunResult| {
            r.completed.iter().map(|c| c.cpu_cycles()).sum::<f64>() / r.completed.len() as f64
        };
        assert!(mean_latency(&slow_net) > mean_latency(&fast_net));
        // CPU consumption is a property of the work, not the network.
        let rel = (mean_cpu(&slow_net) / mean_cpu(&fast_net) - 1.0).abs();
        assert!(rel < 0.1, "cpu drift {rel}");
    }

    #[test]
    fn single_stage_apps_stay_on_machine_zero() {
        let mut f = Tpcc::new(73, 0.05);
        let cfg = cluster_cfg(2, 100);
        let r = run_simulation(cfg, &mut f, 15).expect("valid");
        assert_eq!(r.completed.len(), 15);
        // No hops: latency ~ queueing only, no mandatory 2-hop slack on
        // short requests (smoke check that nothing deadlocks).
    }

    #[test]
    fn mismatched_domains_are_rejected() {
        let mut cfg = SimConfig::paper_default(); // 1 memory domain
        cfg.multi_machine = Some(MultiMachine {
            machines: 2,
            network_hop_delay: Cycles::from_micros(10),
        });
        let mut f = Tpcc::new(74, 0.05);
        assert!(run_simulation(cfg, &mut f, 1).is_err());
    }

    #[test]
    fn distributed_runs_are_deterministic() {
        let run = || {
            let mut f = Rubis::new(75, 0.1);
            run_simulation(cluster_cfg(3, 80), &mut f, 10).expect("valid")
        };
        let (a, b) = (run(), run());
        for (x, y) in a.completed.iter().zip(&b.completed) {
            assert_eq!(x.finished_at, y.finished_at);
            assert_eq!(x.timeline, y.timeline);
        }
    }
}

#[cfg(test)]
mod openloop_tests {
    use super::*;
    use crate::config::{
        ArrivalProcess, ClientPolicy, OverloadPolicy, QueueDiscipline, ShedPolicy, SimConfig,
    };
    use rbv_workloads::Tpcc;

    fn open_cfg(mean_micros: u64) -> SimConfig {
        let mut cfg = SimConfig::paper_default();
        cfg.arrivals = ArrivalProcess::OpenPoisson {
            mean_interarrival: Cycles::from_micros(mean_micros),
        };
        cfg
    }

    /// Sorted arrival instants of every finished request (completions and
    /// failures), for arrival-process statistics.
    fn arrival_times(r: &RunResult) -> Vec<Cycles> {
        let mut at: Vec<Cycles> = r
            .completed
            .iter()
            .map(|c| c.arrived_at)
            .chain(r.failed.iter().map(|f| f.arrived_at))
            .collect();
        at.sort_unstable();
        at
    }

    /// Squared coefficient of variation of the interarrival gaps: 1 for
    /// Poisson, above 1 for bursty processes.
    fn gap_cv2(times: &[Cycles]) -> f64 {
        let gaps: Vec<f64> = times
            .windows(2)
            .map(|w| w[1].saturating_sub(w[0]).as_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        var / (mean * mean)
    }

    #[test]
    fn permissive_client_and_shed_policies_are_bit_identical_to_none() {
        // A client too patient to ever time out and a CoDel target no
        // sojourn can exceed take none of the new paths: results match
        // the plain open-loop engine bit for bit.
        let run = |defended: bool| {
            let mut cfg = open_cfg(50).with_syscall_sampling(10, 1_000);
            if defended {
                cfg.client = Some(ClientPolicy {
                    timeout: Cycles::from_millis(60_000),
                    max_retries: 3,
                    retry_backoff: Cycles::from_micros(100),
                });
                cfg.shed = Some(ShedPolicy {
                    target: Cycles::from_millis(60_000),
                    interval: Cycles::from_millis(60_000),
                });
            }
            let mut f = Tpcc::new(23, 0.05);
            run_simulation(cfg, &mut f, 20).expect("valid")
        };
        let baseline = run(false);
        let permissive = run(true);
        assert_eq!(baseline, permissive);
        assert!(permissive.failed.is_empty());
        assert_eq!(permissive.stats.client_timeouts, 0);
        assert_eq!(permissive.stats.codel_shed, 0);
    }

    #[test]
    fn mmpp_arrivals_are_deterministic_and_burstier_than_poisson() {
        let mmpp = || {
            let mut cfg = SimConfig::paper_default();
            cfg.arrivals = ArrivalProcess::OpenMmpp {
                mean_interarrival: Cycles::from_micros(200),
                burst_mean_interarrival: Cycles::from_micros(10),
                mean_calm_dwell: Cycles::from_millis(2),
                mean_burst_dwell: Cycles::from_millis(1),
            };
            let mut f = Tpcc::new(31, 0.05);
            run_simulation(cfg, &mut f, 60).expect("valid")
        };
        let (a, b) = (mmpp(), mmpp());
        assert_eq!(a, b, "MMPP arrivals must be deterministic");

        let mut f = Tpcc::new(31, 0.05);
        let poisson = run_simulation(open_cfg(200), &mut f, 60).expect("valid");
        let cv2_mmpp = gap_cv2(&arrival_times(&a));
        let cv2_poisson = gap_cv2(&arrival_times(&poisson));
        assert!(
            cv2_mmpp > cv2_poisson,
            "MMPP should be burstier: cv2 {cv2_mmpp} vs poisson {cv2_poisson}"
        );
    }

    #[test]
    fn queue_disciplines_complete_everything_and_differ() {
        let run = |d: Option<QueueDiscipline>| {
            let mut cfg = open_cfg(100);
            cfg.queue_discipline = d;
            let mut f = Tpcc::new(37, 0.05);
            run_simulation(cfg, &mut f, 40).expect("valid")
        };
        let dfcfs = run(Some(QueueDiscipline::Dfcfs));
        let cfcfs = run(Some(QueueDiscipline::Cfcfs));
        assert_eq!(dfcfs.completed.len(), 40);
        assert_eq!(cfcfs.completed.len(), 40);
        // RSS hash steering and the shared central queue genuinely place
        // requests differently.
        assert_ne!(
            dfcfs.completed.last().expect("nonempty").finished_at,
            cfcfs.completed.last().expect("nonempty").finished_at
        );
    }

    #[test]
    fn client_timeouts_retry_and_conserve_requests() {
        let mut cfg = open_cfg(6);
        // Queues deep enough that admitted requests wait well past the
        // client's patience, so timeouts fire while requests sit queued.
        cfg.overload = Some(OverloadPolicy {
            max_runqueue: 16,
            deadline: None,
            max_retries: 1,
            retry_backoff: Cycles::from_micros(50),
        });
        cfg.client = Some(ClientPolicy {
            timeout: Cycles::from_micros(300),
            max_retries: 2,
            retry_backoff: Cycles::from_micros(30),
        });
        let mut f = Tpcc::new(41, 0.05);
        let r = run_simulation(cfg, &mut f, 50).expect("valid");
        assert!(r.stats.client_timeouts > 0);
        assert!(r.stats.client_retries > 0);
        assert!(r.stats.wasted_cycles > 0.0);
        // Conservation under the retry storm: every generated request is
        // accounted for exactly once.
        assert_eq!(r.completed.len() + r.failed.len(), 50);
        for fr in &r.failed {
            assert!(
                matches!(
                    fr.reason,
                    FailReason::AdmissionShed | FailReason::ClientTimeout
                ),
                "unexpected reason {:?}",
                fr.reason
            );
        }
    }

    #[test]
    fn codel_sheds_persistently_overqueued_requests() {
        let mut cfg = open_cfg(6);
        cfg.shed = Some(ShedPolicy {
            target: Cycles::from_micros(30),
            interval: Cycles::from_micros(60),
        });
        let mut f = Tpcc::new(43, 0.05);
        let r = run_simulation(cfg, &mut f, 40).expect("valid");
        assert!(r.stats.codel_shed > 0, "shed {}", r.stats.codel_shed);
        assert_eq!(r.completed.len() + r.failed.len(), 40);
        for fr in &r.failed {
            assert_eq!(fr.reason, FailReason::CodelShed);
        }
    }

    struct CountSink {
        completed: u64,
        failed: u64,
        cpu_cycles: f64,
    }

    impl CompletionSink for CountSink {
        fn on_complete(&mut self, request: &CompletedRequest) {
            self.completed += 1;
            self.cpu_cycles += request.cpu_cycles();
        }

        fn on_fail(&mut self, _request: &FailedRequest) {
            self.failed += 1;
        }
    }

    #[test]
    fn streaming_run_matches_retained_run() {
        let cfg = || {
            let mut cfg = open_cfg(6);
            cfg.overload = Some(OverloadPolicy {
                max_runqueue: 2,
                deadline: None,
                max_retries: 1,
                retry_backoff: Cycles::from_micros(50),
            });
            cfg
        };
        let mut f = Tpcc::new(47, 0.05);
        let retained = run_simulation(cfg(), &mut f, 40).expect("valid");
        let mut f = Tpcc::new(47, 0.05);
        let mut sink = CountSink {
            completed: 0,
            failed: 0,
            cpu_cycles: 0.0,
        };
        let streamed = run_simulation_streaming(cfg(), &mut f, 40, &mut sink).expect("valid");
        // Identical statistics and simulated time; nothing retained.
        assert_eq!(retained.stats, streamed.stats);
        assert_eq!(retained.total_time, streamed.total_time);
        assert!(streamed.completed.is_empty() && streamed.failed.is_empty());
        assert_eq!(sink.completed as usize, retained.completed.len());
        assert_eq!(sink.failed as usize, retained.failed.len());
        let retained_cpu: f64 = retained.completed.iter().map(|c| c.cpu_cycles()).sum();
        assert!((sink.cpu_cycles - retained_cpu).abs() < 1e-6 * retained_cpu.max(1.0));
    }
}
