//! Simulated operating system for the Request Behavior Variations
//! reproduction: the multicore machine, schedulers, request context
//! tracking, and the hardware-counter sampling machinery of §3.
//!
//! * [`config`] — machine / sampling / scheduling / fault-injection /
//!   overload-protection configuration;
//! * [`error`] — the [`RbvError`] type shared by configuration validation
//!   and the `repro` CLI;
//! * [`machine`] — the event-driven execution engine
//!   ([`run_simulation`]): per-core runqueues, quantum scheduling, the
//!   contention-easing policy of §5.2, request context propagation across
//!   components, and exact lazy counter advancement under the analytical
//!   contention model;
//! * [`observer`] — sampling costs and the observer effect (Table 1),
//!   both as calibrated constants and as measurements against the
//!   trace-driven cache hierarchy;
//! * [`accountant`] — the observer-effect cost accountant: per-mode
//!   sampling cost attribution against the "do no harm" budget (§3.4);
//! * [`result`] — completed-request timelines, transition-signal training
//!   records (Table 2), sampling statistics (Figure 5), and contention
//!   accounting (Figure 12);
//! * [`projection`] — the paper's future-work extension: projecting
//!   measured request timelines onto a different hardware platform.
//!
//! # Example
//!
//! ```
//! use rbv_os::{run_simulation, SimConfig};
//! use rbv_workloads::{Tpcc, RequestFactory};
//!
//! let mut factory = Tpcc::new(42, 0.05);
//! let result = run_simulation(SimConfig::paper_default(), &mut factory, 5)
//!     .expect("valid configuration");
//! assert_eq!(result.completed.len(), 5);
//! let cpi = result.completed[0].request_cpi().expect("ran instructions");
//! assert!(cpi > 0.5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod accountant;
pub mod config;
pub mod error;
pub mod machine;
pub mod observer;
pub mod projection;
pub mod result;

pub use accountant::{ModeCost, ObserverReport, DO_NO_HARM_BUDGET};
pub use config::{
    ArrivalProcess, ClientPolicy, MeasurementFaults, OverloadPolicy, QueueDiscipline,
    SamplingPolicy, SchedulerPolicy, ShedPolicy, SimConfig,
};
// Guard re-exports so callers configuring `SimConfig::governor` need not
// depend on `rbv-guard` directly.
pub use error::RbvError;
pub use machine::{
    run_simulation, run_simulation_streaming, run_simulation_streaming_traced,
    run_simulation_traced, CompletionSink, Machine,
};
pub use observer::{measure_sampling_cost, SampleCost, SampleMode, SamplingContext};
pub use projection::PlatformProjection;
pub use rbv_guard::{GovernorPolicy, HealthPolicy, InvariantKind, LadderRung};
// Power re-exports so callers configuring `SimConfig::power` and
// `SimConfig::thermal_faults` need not depend on `rbv-power` directly.
pub use rbv_guard::{PowerCapPolicy, PowerRung};
pub use rbv_power::{joules, PowerPolicy, ThermalFaults};
pub use result::{
    CompletedRequest, EnergyStats, FailReason, FailedRequest, RunResult, RunStats, SyscallRecord,
    TransitionRecord,
};
