//! Configuration of the simulated machine, sampling, scheduling, fault
//! injection, and overload protection.

use std::collections::HashSet;

use rbv_guard::GovernorPolicy;
use rbv_mem::MachineSpec;
use rbv_sim::Cycles;
use rbv_workloads::SyscallName;

use crate::error::RbvError;

/// How the OS samples hardware counters beyond the always-on request
/// context switch sampling (§3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplingPolicy {
    /// Only sample at request context switches (the §2.1 baseline needed
    /// for per-request attribution).
    ContextSwitchOnly,
    /// Periodic interrupt-based sampling (§3.1): one APIC interrupt per
    /// `period`.
    Interrupt {
        /// Sampling period.
        period: Cycles,
    },
    /// System call-triggered sampling (§3.2): sample at a syscall's kernel
    /// entrance when at least `t_syscall_min` has elapsed since the last
    /// sample; a backup interrupt fires after `t_backup_int` without any
    /// sample. `t_backup_int` is substantially larger than `t_syscall_min`
    /// so no interrupts occur while syscalls are frequent.
    SyscallTriggered {
        /// Minimum spacing between syscall-context samples.
        t_syscall_min: Cycles,
        /// Backup interrupt delay covering syscall-free stretches.
        t_backup_int: Cycles,
    },
    /// Behavior-transition-signal sampling (§3.2 "Behavior Transition
    /// Signals"): like [`SamplingPolicy::SyscallTriggered`] but only the
    /// listed system calls trigger samples.
    TransitionSignals {
        /// Syscall names acting as transition signals (e.g. `writev`,
        /// `lseek`, `stat`, `poll` for the web server).
        triggers: HashSet<SyscallName>,
        /// Minimum spacing between trigger samples (set *smaller* than the
        /// plain syscall-triggered policy to equalize overall frequency).
        t_syscall_min: Cycles,
        /// Backup interrupt delay.
        t_backup_int: Cycles,
    },
    /// The paper's suggested improvement: trigger on *pairs* of recent
    /// system call names. A single name occurring in many semantic
    /// contexts of a long request cannot consistently signal transitions;
    /// the `(previous, current)` bigram disambiguates the context.
    TransitionSignalPairs {
        /// `(previous, current)` name pairs acting as transition signals.
        triggers: HashSet<(SyscallName, SyscallName)>,
        /// Minimum spacing between trigger samples.
        t_syscall_min: Cycles,
        /// Backup interrupt delay.
        t_backup_int: Cycles,
    },
}

/// CPU scheduling policy (§5.2).
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerPolicy {
    /// Stock round-robin per-core runqueues with the configured quantum.
    Stock,
    /// Contention-easing scheduling: at each scheduling opportunity
    /// (re-evaluated every `resched_interval`, the paper's ≤ 5 ms), avoid
    /// co-executing requests whose predicted L2 misses per instruction
    /// exceed `high_usage_threshold`.
    ContentionEasing {
        /// Re-scheduling attempt interval (≤ 5 ms in the paper).
        resched_interval: Cycles,
        /// The high-resource-usage threshold on predicted L2 misses per
        /// instruction (the paper uses the per-application 80th
        /// percentile).
        high_usage_threshold: f64,
        /// vaEWMA gain for online prediction (the paper settles on 0.6).
        alpha: f64,
    },
}

/// How requests enter the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Closed loop: `concurrency` requests in flight; each completion
    /// immediately admits the next (the paper's saturated test runs).
    ClosedLoop,
    /// Open loop: requests arrive by a Poisson process with the given mean
    /// interarrival time, regardless of completions. Queueing delay then
    /// shows up in request latency.
    OpenPoisson {
        /// Mean interarrival time.
        mean_interarrival: Cycles,
    },
    /// Open loop, bursty: a two-state Markov-modulated Poisson process.
    /// The process alternates between a calm state (arrivals at
    /// `mean_interarrival`) and a burst state (arrivals at the faster
    /// `burst_mean_interarrival`), with exponentially distributed dwell
    /// times in each state. All draws come from the engine's seeded
    /// stream, so the arrival trace is a pure function of the seed.
    OpenMmpp {
        /// Mean interarrival time in the calm state.
        mean_interarrival: Cycles,
        /// Mean interarrival time in the burst state (must not exceed the
        /// calm mean — bursts make arrivals denser, not sparser).
        burst_mean_interarrival: Cycles,
        /// Mean dwell time in the calm state.
        mean_calm_dwell: Cycles,
        /// Mean dwell time in the burst state.
        mean_burst_dwell: Cycles,
    },
    /// Externally driven: the engine spawns nothing on its own — every
    /// request is handed to it by an outside owner (a
    /// `rbv-cluster` event loop injecting tier legs as they hop between
    /// machines). The engine still runs its full scheduling/sampling
    /// machinery; only the arrival source moves out of process.
    External,
}

impl ArrivalProcess {
    /// Whether requests arrive independent of completions (either open
    /// variant). Open-loop arrivals are what the client-retry and
    /// queue-shedding policies require; externally driven machines have
    /// no in-engine client, so they do not count as open here.
    pub fn is_open(&self) -> bool {
        matches!(
            self,
            ArrivalProcess::OpenPoisson { .. } | ArrivalProcess::OpenMmpp { .. }
        )
    }
}

/// Front-end queue discipline for open-loop arrivals: how a NIC-style
/// receive path steers new requests onto runqueues. `None` in
/// [`SimConfig::queue_discipline`] keeps the engine's least-loaded
/// placement bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// d-FCFS: RSS-style steering. A deterministic hash of the request id
    /// indexes an indirection table that assigns each request a fixed
    /// per-core queue, as a multi-queue NIC would; each core serves its
    /// own queue FCFS. Load imbalance between queues is the price.
    Dfcfs,
    /// c-FCFS: a single central queue all cores pull from in arrival
    /// order. Work-conserving and optimal for tail latency at the cost of
    /// a (here un-modeled) shared dequeue point.
    Cfcfs,
}

impl QueueDiscipline {
    /// Stable lower-case label used on the CLI and in ledgers.
    pub fn label(self) -> &'static str {
        match self {
            QueueDiscipline::Dfcfs => "dfcfs",
            QueueDiscipline::Cfcfs => "cfcfs",
        }
    }
}

/// Open-loop client model: each submitted request carries a client-side
/// timeout; on expiry the client abandons the attempt wherever it is
/// (queued, running, or in admission backoff), and resubmits after capped
/// exponential backoff with deterministic jitter — the mechanism that
/// turns sustained overload into a metastable retry storm when left
/// undefended. `None` in [`SimConfig::client`] models patient clients and
/// changes nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientPolicy {
    /// Client-side timeout, measured from each (re)submission.
    pub timeout: Cycles,
    /// Resubmissions the client attempts after timeouts before giving up
    /// (the request then fails with reason `timeout`).
    pub max_retries: u32,
    /// Base backoff before the first resubmission; attempt `k` waits
    /// `retry_backoff * 2^min(k, 16)` plus up to 50% jitter derived from
    /// a hash of the request id and attempt (no RNG stream is consumed,
    /// so retry-free runs stay bit-identical to retry-less builds).
    pub retry_backoff: Cycles,
}

impl ClientPolicy {
    /// A typical impatient client: 50 ms timeout, 3 retries, 1 ms base
    /// backoff.
    pub fn impatient() -> ClientPolicy {
        ClientPolicy {
            timeout: Cycles::from_millis(50),
            max_retries: 3,
            retry_backoff: Cycles::from_millis(1),
        }
    }

    /// Checks field sanity.
    ///
    /// # Errors
    ///
    /// Returns [`RbvError::Config`] naming the first inconsistent field.
    pub fn validate(&self) -> Result<(), RbvError> {
        if self.timeout.is_zero() {
            return Err(RbvError::Config("client timeout must be nonzero".into()));
        }
        if self.max_retries > 0 && self.retry_backoff.is_zero() {
            return Err(RbvError::Config(
                "client retries need a nonzero backoff".into(),
            ));
        }
        Ok(())
    }
}

/// CoDel-style queue shedding at dequeue time: when the queueing delay
/// ("sojourn") of dequeued requests has stayed above `target` for a full
/// `interval`, the offending request is shed instead of served, and the
/// clock restarts. Deterministic — no RNG is involved — and `None` in
/// [`SimConfig::shed`] changes nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedPolicy {
    /// Acceptable sojourn time; dequeues under this reset the controller.
    pub target: Cycles,
    /// How long sojourn must continuously exceed `target` before the
    /// controller sheds (and between consecutive sheds).
    pub interval: Cycles,
}

impl ShedPolicy {
    /// CoDel's canonical 5 ms / 100 ms constants, scaled to the 3 GHz
    /// simulated clock.
    pub fn codel() -> ShedPolicy {
        ShedPolicy {
            target: Cycles::from_millis(5),
            interval: Cycles::from_millis(100),
        }
    }

    /// Checks field sanity.
    ///
    /// # Errors
    ///
    /// Returns [`RbvError::Config`] naming the first inconsistent field.
    pub fn validate(&self) -> Result<(), RbvError> {
        if self.target.is_zero() || self.interval.is_zero() {
            return Err(RbvError::Config(
                "shed policy target and interval must be nonzero".into(),
            ));
        }
        Ok(())
    }
}

/// Multi-machine deployment (§7, future work): the machine spec's cores
/// split into `machines` equal boxes (one memory domain each — pair with
/// [`rbv_mem::MachineSpec::xeon_5160_cluster`]), server components are
/// placed on dedicated machines, and a request's stage hop to another
/// machine pays a network delay before it becomes runnable there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiMachine {
    /// Number of machines; must divide the topology's core count and
    /// match the machine spec's `memory_domains`.
    pub machines: usize,
    /// One-way network latency of an inter-machine request hop.
    pub network_hop_delay: Cycles,
}

impl MultiMachine {
    /// The machine a server component is deployed on: web tier on machine
    /// 0, database on the last machine, application tier in between
    /// (collapsing gracefully for small clusters). Standalone components
    /// live on machine 0.
    pub fn machine_of(&self, component: rbv_workloads::Component) -> usize {
        use rbv_workloads::Component;
        match component {
            Component::WebTier | Component::Standalone => 0,
            Component::AppTier => 1.min(self.machines - 1),
            Component::Database => self.machines - 1,
        }
    }
}

/// Deterministic measurement-level fault injection (§"do no harm"
/// validation): the sampling apparatus itself misbehaves and the engine
/// must degrade gracefully — fall back to the backup interrupt timer and
/// flag low-confidence samples — instead of silently corrupting the
/// collected counter series.
///
/// All-zero ([`MeasurementFaults::none`], the default) disables every
/// fault and draws nothing from any random stream, so fault-free runs are
/// bit-identical to runs of builds that predate fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementFaults {
    /// Probability that a (periodic or backup) sampling interrupt is lost
    /// before the handler runs. The period it would have closed extends
    /// into the next sample, which is flagged low-confidence.
    pub lost_interrupt_prob: f64,
    /// Probability that a collected sample's cache event counters
    /// overflowed/wrapped since the last read. The kernel detects the wrap,
    /// zeroes the affected counters, and flags the sample low-confidence
    /// rather than reporting wrapped garbage.
    pub counter_overflow_prob: f64,
    /// Relative sigma of counter *skid*: interrupt-based attribution lands
    /// a few events early or late, jittering the cache counters of each
    /// sample multiplicatively (on top of [`SimConfig::counter_noise`]).
    pub counter_skid_sigma: f64,
    /// Probability, evaluated at each would-be syscall-triggered sample,
    /// that the syscall sampling path starves for
    /// [`MeasurementFaults::syscall_starvation_window`] (models priority
    /// inversion or a wedged per-CPU sampling slot). During a starvation
    /// window only the backup interrupt timer collects samples.
    pub syscall_starvation_prob: f64,
    /// Length of one syscall-sampling starvation window.
    pub syscall_starvation_window: Cycles,
}

impl MeasurementFaults {
    /// No measurement faults (the default).
    pub fn none() -> MeasurementFaults {
        MeasurementFaults {
            lost_interrupt_prob: 0.0,
            counter_overflow_prob: 0.0,
            counter_skid_sigma: 0.0,
            syscall_starvation_prob: 0.0,
            syscall_starvation_window: Cycles::ZERO,
        }
    }

    /// True when any fault channel is active.
    pub fn enabled(&self) -> bool {
        self.lost_interrupt_prob > 0.0
            || self.counter_overflow_prob > 0.0
            || self.counter_skid_sigma > 0.0
            || self.syscall_starvation_prob > 0.0
    }

    /// Checks field sanity.
    ///
    /// # Errors
    ///
    /// Returns [`RbvError::Config`] naming the first out-of-range field.
    pub fn validate(&self) -> Result<(), RbvError> {
        for (name, p) in [
            ("lost_interrupt_prob", self.lost_interrupt_prob),
            ("counter_overflow_prob", self.counter_overflow_prob),
            ("syscall_starvation_prob", self.syscall_starvation_prob),
        ] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(RbvError::Config(format!("{name} {p} must be in [0, 1]")));
            }
        }
        if !(self.counter_skid_sigma.is_finite() && (0.0..1.0).contains(&self.counter_skid_sigma)) {
            return Err(RbvError::Config(format!(
                "counter_skid_sigma {} must be in [0, 1)",
                self.counter_skid_sigma
            )));
        }
        if self.syscall_starvation_prob > 0.0 && self.syscall_starvation_window.is_zero() {
            return Err(RbvError::Config(
                "syscall starvation needs a nonzero window".into(),
            ));
        }
        Ok(())
    }
}

/// Overload protection: per-core admission control with bounded runqueues,
/// request deadlines with timeout abort, and client retry with exponential
/// backoff plus jitter. `None` in [`SimConfig::overload`] reproduces the
/// unprotected engine exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadPolicy {
    /// Maximum requests a core may hold (queued + running) for a *new*
    /// request to be admitted there. Mid-request stage hops and quantum
    /// requeues are exempt — once admitted, a request always finishes its
    /// journey (or hits its deadline).
    pub max_runqueue: usize,
    /// End-to-end deadline from arrival; a request still incomplete when it
    /// expires is aborted (timeout abort). `None` disables deadlines.
    pub deadline: Option<Cycles>,
    /// Admission retries the (closed-loop) client attempts before the
    /// request is shed for good.
    pub max_retries: u32,
    /// Base client backoff before the first retry; attempt `k` waits
    /// `retry_backoff * 2^k` plus up to 50% deterministic jitter.
    pub retry_backoff: Cycles,
}

impl OverloadPolicy {
    /// A reasonable default: queues bounded at 8 per core, no deadline,
    /// 5 retries starting at 100 µs.
    pub fn bounded_queues() -> OverloadPolicy {
        OverloadPolicy {
            max_runqueue: 8,
            deadline: None,
            max_retries: 5,
            retry_backoff: Cycles::from_micros(100),
        }
    }

    /// Checks field sanity.
    ///
    /// # Errors
    ///
    /// Returns [`RbvError::Config`] naming the first inconsistent field.
    pub fn validate(&self) -> Result<(), RbvError> {
        if self.max_runqueue == 0 {
            return Err(RbvError::Config(
                "overload max_runqueue must admit at least one request".into(),
            ));
        }
        if self.deadline.is_some_and(|d| d.is_zero()) {
            return Err(RbvError::Config("overload deadline must be nonzero".into()));
        }
        if self.max_retries > 0 && self.retry_backoff.is_zero() {
            return Err(RbvError::Config(
                "retrying admission needs a nonzero backoff".into(),
            ));
        }
        Ok(())
    }
}

/// Full simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Machine constants for the analytical performance model.
    pub machine: MachineSpec,
    /// CPU scheduling quantum (Linux-like 100 ms default).
    pub quantum: Cycles,
    /// Counter sampling policy.
    pub sampling: SamplingPolicy,
    /// Scheduling policy.
    pub scheduler: SchedulerPolicy,
    /// Closed-loop concurrency: requests kept in flight. 1 = the serial
    /// executions of Figure 1's first row. Ignored under
    /// [`ArrivalProcess::OpenPoisson`].
    pub concurrency: usize,
    /// Request arrival process.
    pub arrivals: ArrivalProcess,
    /// Front-end queue discipline for new arrivals (RSS-steered d-FCFS or
    /// central c-FCFS). `None` (the default) keeps least-loaded placement
    /// bit-identically. Requires single-machine, no component affinity,
    /// and no work stealing — the NIC front end owns placement.
    pub queue_discipline: Option<QueueDiscipline>,
    /// Open-loop client timeout/retry model; `None` (the default) models
    /// patient clients and changes nothing. Requires open-loop arrivals.
    pub client: Option<ClientPolicy>,
    /// CoDel-style dequeue-time shedding; `None` (the default) changes
    /// nothing. Requires open-loop arrivals.
    pub shed: Option<ShedPolicy>,
    /// Multi-machine deployment; `None` = the paper's single machine.
    pub multi_machine: Option<MultiMachine>,
    /// Allow an idling core to steal the tail request of the longest
    /// runqueue. The paper's contention-easing prototype explicitly does
    /// *not* migrate requests between runqueues "for simplicity" (§5.2);
    /// this switch lifts that limitation for comparison.
    pub work_stealing: bool,
    /// Pin server components to dedicated cores (web tier on core 0, the
    /// application tier on the middle cores, the database on the last
    /// core) instead of least-loaded placement — the component-placement
    /// dimension the paper's §7 sketches for multi-machine deployments,
    /// here at core granularity.
    pub component_affinity: bool,
    /// Replace LRU cache sharing with static equal partitioning of each
    /// shared L2 among its occupied cores (page-coloring-style isolation,
    /// the related-work alternative the paper's §6 discusses).
    pub static_cache_partition: bool,
    /// Whether to subtract the minimum ("do no harm") observer effect from
    /// collected samples (§3.1).
    pub compensate_observer_effect: bool,
    /// Relative sigma of multiplicative measurement noise applied to the
    /// L2 reference/miss counts of each collected sample period. Real
    /// performance counter sampling jitters (interrupt skid, unattributed
    /// speculative events, unrelated kernel activity); a noiseless
    /// simulator would make trivial last-value prediction look unbeatable
    /// in Figure 11. Zero disables.
    pub counter_noise: f64,
    /// When set, the engine accounts the time during which `k` cores
    /// simultaneously run at L2-misses-per-instruction at or above this
    /// level (the Figure 12 measurement), independent of the scheduler.
    pub measure_threshold: Option<f64>,
    /// Measurement-level fault injection; [`MeasurementFaults::none`]
    /// (the default) leaves every random stream and event schedule
    /// untouched.
    pub faults: MeasurementFaults,
    /// Overload protection; `None` (the default) reproduces the
    /// unprotected engine exactly.
    pub overload: Option<OverloadPolicy>,
    /// Prediction-confidence gate for the contention-easing scheduler:
    /// when the running mean relative error of the vaEWMA predictions
    /// exceeds this threshold, easing decisions fall back to stock
    /// scheduling until confidence recovers. `None` (the default) never
    /// gates.
    pub easing_error_gate: Option<f64>,
    /// Runtime guardrails (`rbv-guard`): the adaptive do-no-harm sampling
    /// governor, the measurement-health degradation ladder (which
    /// supersedes [`SimConfig::easing_error_gate`] while enabled), and
    /// the online invariant monitor. `None` (the default) schedules no
    /// governor ticks and leaves the engine's event stream bit-identical
    /// to an ungoverned build.
    pub governor: Option<GovernorPolicy>,
    /// Per-core DVFS/power/thermal model (`rbv-power`): a discrete
    /// P-state frequency ladder, a fixed-point energy accumulator, RC
    /// heating/cooling, and firmware thermal throttling. `None` (the
    /// default) accounts no energy and leaves the engine's event stream
    /// bit-identical to a power-unaware build.
    pub power: Option<rbv_power::PowerPolicy>,
    /// Seeded thermal fault plan (heatwave, cooling failure, hot loop).
    /// Requires [`SimConfig::power`]; `None` (the default) injects
    /// nothing.
    pub thermal_faults: Option<rbv_power::ThermalFaults>,
    /// Engine RNG seed (placement decisions only; workload randomness
    /// lives in the factories).
    pub seed: u64,
}

impl SimConfig {
    /// The paper's default setup: 4-core Xeon 5160, 100 ms quanta, stock
    /// scheduler, context-switch-only sampling, 8-way closed loop.
    pub fn paper_default() -> SimConfig {
        SimConfig {
            machine: MachineSpec::xeon_5160(),
            quantum: Cycles::from_millis(100),
            sampling: SamplingPolicy::ContextSwitchOnly,
            scheduler: SchedulerPolicy::Stock,
            concurrency: 8,
            arrivals: ArrivalProcess::ClosedLoop,
            queue_discipline: None,
            client: None,
            shed: None,
            multi_machine: None,
            work_stealing: false,
            component_affinity: false,
            static_cache_partition: false,
            compensate_observer_effect: true,
            counter_noise: 0.08,
            measure_threshold: None,
            faults: MeasurementFaults::none(),
            overload: None,
            easing_error_gate: None,
            governor: None,
            power: None,
            thermal_faults: None,
            seed: 0,
        }
    }

    /// Same but sampling at periodic interrupts of `period_micros`.
    pub fn with_interrupt_sampling(mut self, period_micros: u64) -> SimConfig {
        self.sampling = SamplingPolicy::Interrupt {
            period: Cycles::from_micros(period_micros),
        };
        self
    }

    /// Same but with syscall-triggered sampling.
    pub fn with_syscall_sampling(
        mut self,
        t_syscall_min_micros: u64,
        t_backup_int_micros: u64,
    ) -> SimConfig {
        self.sampling = SamplingPolicy::SyscallTriggered {
            t_syscall_min: Cycles::from_micros(t_syscall_min_micros),
            t_backup_int: Cycles::from_micros(t_backup_int_micros),
        };
        self
    }

    /// Serial execution (one request at a time), as in Figure 1 row 1.
    pub fn serial(mut self) -> SimConfig {
        self.concurrency = 1;
        self
    }

    /// Checks configuration sanity.
    ///
    /// # Errors
    ///
    /// Returns [`RbvError::Config`] describing the first inconsistent
    /// field.
    pub fn validate(&self) -> Result<(), RbvError> {
        let config_err = |msg: String| Err(RbvError::Config(msg));
        if self.concurrency == 0 {
            return config_err("concurrency must be at least 1".into());
        }
        match self.arrivals {
            ArrivalProcess::OpenPoisson { mean_interarrival } => {
                if mean_interarrival.is_zero() {
                    return config_err("mean interarrival must be nonzero".into());
                }
            }
            ArrivalProcess::OpenMmpp {
                mean_interarrival,
                burst_mean_interarrival,
                mean_calm_dwell,
                mean_burst_dwell,
            } => {
                if mean_interarrival.is_zero()
                    || burst_mean_interarrival.is_zero()
                    || mean_calm_dwell.is_zero()
                    || mean_burst_dwell.is_zero()
                {
                    return config_err("MMPP means and dwells must be nonzero".into());
                }
                if burst_mean_interarrival > mean_interarrival {
                    return config_err(format!(
                        "MMPP burst interarrival {burst_mean_interarrival} must not exceed the calm interarrival {mean_interarrival}"
                    ));
                }
            }
            ArrivalProcess::ClosedLoop | ArrivalProcess::External => {}
        }
        if self.arrivals == ArrivalProcess::External {
            // Externally driven machines belong to a cluster loop that
            // owns arrival timing and cross-machine routing; the
            // in-engine policies that would race it are rejected.
            if self.overload.is_some() {
                return config_err("external arrivals exclude the overload policy".into());
            }
            if self.shed.is_some() {
                return config_err("external arrivals exclude queue shedding".into());
            }
            if self.multi_machine.is_some() {
                return config_err(
                    "external arrivals exclude the in-engine multi-machine model".into(),
                );
            }
        }
        if self.queue_discipline.is_some() {
            // The NIC front end owns placement: it cannot coexist with the
            // placement features that also want to decide where requests go.
            if self.multi_machine.is_some() {
                return config_err("queue discipline requires a single machine".into());
            }
            if self.component_affinity {
                return config_err("queue discipline excludes component affinity".into());
            }
            if self.work_stealing {
                return config_err("queue discipline excludes work stealing".into());
            }
        }
        if let Some(client) = &self.client {
            client.validate()?;
            if !self.arrivals.is_open() {
                return config_err("client timeout/retry model requires open-loop arrivals".into());
            }
            // A resubmitted request must not race an in-flight network
            // hop from its aborted attempt back into a runqueue.
            if self.multi_machine.is_some() {
                return config_err("client timeout/retry model requires a single machine".into());
            }
        }
        if let Some(shed) = &self.shed {
            shed.validate()?;
            if !self.arrivals.is_open() {
                return config_err("queue shedding requires open-loop arrivals".into());
            }
        }
        if let Some(mm) = &self.multi_machine {
            if mm.machines == 0 {
                return config_err("multi-machine deployment needs at least one machine".into());
            }
            if !self.machine.topology.cores.is_multiple_of(mm.machines) {
                return config_err(format!(
                    "{} machines must evenly divide {} cores",
                    mm.machines, self.machine.topology.cores
                ));
            }
            if self.machine.memory_domains != mm.machines {
                return config_err(format!(
                    "machine spec has {} memory domains but the deployment has {} machines",
                    self.machine.memory_domains, mm.machines
                ));
            }
        }
        if self.quantum.is_zero() {
            return config_err("quantum must be nonzero".into());
        }
        match &self.sampling {
            SamplingPolicy::Interrupt { period } if period.is_zero() => {
                return config_err("interrupt period must be nonzero".into());
            }
            SamplingPolicy::SyscallTriggered {
                t_syscall_min,
                t_backup_int,
            }
            | SamplingPolicy::TransitionSignals {
                t_syscall_min,
                t_backup_int,
                ..
            }
            | SamplingPolicy::TransitionSignalPairs {
                t_syscall_min,
                t_backup_int,
                ..
            } => {
                // A zero backup delay would rearm the backup timer at the
                // current instant forever (the engine's `rearm_backup_timer`
                // relies on this config-time guarantee instead of checking
                // at every rearm).
                if t_backup_int.is_zero() {
                    return config_err("backup interrupt delay must be nonzero".into());
                }
                if t_backup_int <= t_syscall_min {
                    return config_err(format!(
                        "backup interrupt delay {t_backup_int} must exceed t_syscall_min {t_syscall_min}"
                    ));
                }
            }
            _ => {}
        }
        if !(self.counter_noise.is_finite() && (0.0..1.0).contains(&self.counter_noise)) {
            return config_err(format!(
                "counter_noise {} must be in [0, 1)",
                self.counter_noise
            ));
        }
        if let SchedulerPolicy::ContentionEasing {
            resched_interval,
            high_usage_threshold,
            alpha,
        } = &self.scheduler
        {
            if resched_interval.is_zero() {
                return config_err("resched interval must be nonzero".into());
            }
            if !(0.0..=1.0).contains(alpha) {
                return config_err(format!("alpha {alpha} must be in [0, 1]"));
            }
            if !high_usage_threshold.is_finite() || *high_usage_threshold < 0.0 {
                return config_err(format!(
                    "high usage threshold {high_usage_threshold} must be nonnegative"
                ));
            }
        }
        if let Some(gate) = self.easing_error_gate {
            if !(gate.is_finite() && gate > 0.0) {
                return config_err(format!("easing error gate {gate} must be positive"));
            }
        }
        self.faults.validate()?;
        if let Some(overload) = &self.overload {
            overload.validate()?;
        }
        if let Some(governor) = &self.governor {
            governor.validate().map_err(RbvError::Config)?;
        }
        if let Some(power) = &self.power {
            power.validate().map_err(RbvError::Config)?;
        }
        if let Some(thermal) = &self.thermal_faults {
            thermal.validate().map_err(RbvError::Config)?;
            if self.power.is_none() {
                return config_err("thermal faults require a power model".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        assert!(SimConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn builders_set_policies() {
        let c = SimConfig::paper_default().with_interrupt_sampling(10);
        assert_eq!(
            c.sampling,
            SamplingPolicy::Interrupt {
                period: Cycles::from_micros(10)
            }
        );
        let c = SimConfig::paper_default().with_syscall_sampling(5, 200);
        assert!(matches!(
            c.sampling,
            SamplingPolicy::SyscallTriggered { .. }
        ));
        assert!(c.validate().is_ok());
        let c = SimConfig::paper_default().serial();
        assert_eq!(c.concurrency, 1);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = SimConfig::paper_default();
        c.concurrency = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::paper_default().with_syscall_sampling(100, 50);
        assert!(c.validate().is_err());
        c = SimConfig::paper_default().with_syscall_sampling(50, 100);
        assert!(c.validate().is_ok());

        let mut c = SimConfig::paper_default();
        c.scheduler = SchedulerPolicy::ContentionEasing {
            resched_interval: Cycles::from_millis(5),
            high_usage_threshold: -1.0,
            alpha: 0.6,
        };
        assert!(c.validate().is_err());

        let mut c = SimConfig::paper_default();
        c.scheduler = SchedulerPolicy::ContentionEasing {
            resched_interval: Cycles::from_millis(5),
            high_usage_threshold: 0.001,
            alpha: 1.5,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn thermal_faults_require_a_power_model() {
        let mut c = SimConfig::paper_default();
        c.thermal_faults = Some(rbv_power::ThermalFaults::storm(1));
        assert!(c.validate().is_err());
        c.power = Some(rbv_power::PowerPolicy::paper_default());
        assert!(c.validate().is_ok());
        c.power = Some(rbv_power::PowerPolicy {
            ladder_milli: vec![900],
            ..rbv_power::PowerPolicy::paper_default()
        });
        assert!(c.validate().is_err(), "power policy is validated too");
    }

    #[test]
    fn quantum_default_is_100ms() {
        let c = SimConfig::paper_default();
        assert_eq!(c.quantum, Cycles::from_millis(100));
    }

    #[test]
    fn zero_backup_delay_is_rejected_at_build_time() {
        // The engine's `rearm_backup_timer` relies on this: a zero backup
        // delay would self-schedule at the same instant forever.
        let mut c = SimConfig::paper_default();
        c.sampling = SamplingPolicy::SyscallTriggered {
            t_syscall_min: Cycles::ZERO,
            t_backup_int: Cycles::ZERO,
        };
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("backup interrupt delay"));
    }

    #[test]
    fn measurement_fault_ranges_are_validated() {
        assert!(MeasurementFaults::none().validate().is_ok());
        assert!(!MeasurementFaults::none().enabled());

        let mut f = MeasurementFaults::none();
        f.lost_interrupt_prob = 1.5;
        assert!(f.validate().is_err());

        let mut f = MeasurementFaults::none();
        f.counter_skid_sigma = 1.0;
        assert!(f.validate().is_err());

        let mut f = MeasurementFaults::none();
        f.syscall_starvation_prob = 0.5; // but zero window
        assert!(f.validate().is_err());
        f.syscall_starvation_window = Cycles::from_millis(1);
        assert!(f.validate().is_ok());
        assert!(f.enabled());

        let mut c = SimConfig::paper_default();
        c.faults.counter_overflow_prob = -0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn overload_policy_is_validated() {
        assert!(OverloadPolicy::bounded_queues().validate().is_ok());

        let mut p = OverloadPolicy::bounded_queues();
        p.max_runqueue = 0;
        assert!(p.validate().is_err());

        let mut p = OverloadPolicy::bounded_queues();
        p.deadline = Some(Cycles::ZERO);
        assert!(p.validate().is_err());

        let mut p = OverloadPolicy::bounded_queues();
        p.retry_backoff = Cycles::ZERO;
        assert!(p.validate().is_err());
        p.max_retries = 0;
        assert!(p.validate().is_ok());

        let mut c = SimConfig::paper_default();
        c.overload = Some(OverloadPolicy {
            max_runqueue: 0,
            ..OverloadPolicy::bounded_queues()
        });
        assert!(c.validate().is_err());
    }

    #[test]
    fn mmpp_arrivals_are_validated() {
        let mut c = SimConfig::paper_default();
        c.arrivals = ArrivalProcess::OpenMmpp {
            mean_interarrival: Cycles::from_micros(100),
            burst_mean_interarrival: Cycles::from_micros(20),
            mean_calm_dwell: Cycles::from_millis(5),
            mean_burst_dwell: Cycles::from_millis(1),
        };
        assert!(c.validate().is_ok());
        assert!(c.arrivals.is_open());

        // A "burst" slower than calm is a spec error.
        c.arrivals = ArrivalProcess::OpenMmpp {
            mean_interarrival: Cycles::from_micros(20),
            burst_mean_interarrival: Cycles::from_micros(100),
            mean_calm_dwell: Cycles::from_millis(5),
            mean_burst_dwell: Cycles::from_millis(1),
        };
        assert!(c.validate().is_err());

        c.arrivals = ArrivalProcess::OpenMmpp {
            mean_interarrival: Cycles::from_micros(100),
            burst_mean_interarrival: Cycles::from_micros(20),
            mean_calm_dwell: Cycles::ZERO,
            mean_burst_dwell: Cycles::from_millis(1),
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn queue_discipline_excludes_other_placement_features() {
        let mut c = SimConfig::paper_default();
        c.queue_discipline = Some(QueueDiscipline::Dfcfs);
        assert!(c.validate().is_ok());
        c.work_stealing = true;
        assert!(c.validate().is_err());
        c.work_stealing = false;
        c.component_affinity = true;
        assert!(c.validate().is_err());
        assert_eq!(QueueDiscipline::Dfcfs.label(), "dfcfs");
        assert_eq!(QueueDiscipline::Cfcfs.label(), "cfcfs");
    }

    #[test]
    fn client_and_shed_policies_require_open_loop() {
        let mut c = SimConfig::paper_default();
        c.client = Some(ClientPolicy::impatient());
        assert!(c.validate().is_err(), "closed loop has no client timeouts");
        c.arrivals = ArrivalProcess::OpenPoisson {
            mean_interarrival: Cycles::from_micros(100),
        };
        assert!(c.validate().is_ok());

        let mut c = SimConfig::paper_default();
        c.shed = Some(ShedPolicy::codel());
        assert!(c.validate().is_err(), "shedding needs open-loop arrivals");
        c.arrivals = ArrivalProcess::OpenPoisson {
            mean_interarrival: Cycles::from_micros(100),
        };
        assert!(c.validate().is_ok());

        let mut bad = ClientPolicy::impatient();
        bad.timeout = Cycles::ZERO;
        assert!(bad.validate().is_err());
        let mut bad = ClientPolicy::impatient();
        bad.retry_backoff = Cycles::ZERO;
        assert!(bad.validate().is_err());
        bad.max_retries = 0;
        assert!(bad.validate().is_ok());
        let mut bad = ShedPolicy::codel();
        bad.interval = Cycles::ZERO;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn easing_gate_must_be_positive() {
        let mut c = SimConfig::paper_default();
        c.easing_error_gate = Some(0.0);
        assert!(c.validate().is_err());
        c.easing_error_gate = Some(0.4);
        assert!(c.validate().is_ok());
    }
}
