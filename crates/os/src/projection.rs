//! Cross-platform performance projection (§7, future work).
//!
//! "Our characterized request workload may serve as input to server system
//! performance models to predict performance or its bounds under different
//! system configurations. In particular, fine-grained behavior variation
//! patterns can help project request resource consumption on a new
//! hardware platform."
//!
//! A request timeline measured on a *source* machine decomposes each
//! sample period into machine-independent parts — instructions, L2
//! references per instruction, L2 miss ratio — plus the machine-dependent
//! stall costs. Holding the cache-capacity-dependent miss ratio fixed
//! (valid when the target keeps the source's cache capacity; callers can
//! supply a miss-ratio transform otherwise), the period's cycle count on a
//! target machine with different L2 hit and memory latencies is:
//!
//! ```text
//! base     = cycles_src − refs · (hit_src · (1 − m) + mem_src · m)
//! cycles'  = base + refs · (hit_tgt · (1 − m) + mem_tgt · m)
//! ```
//!
//! where `base` — the core-local cycles — carries over unchanged. This is
//! exactly the fine-grained projection the paper motivates: the per-period
//! variation pattern determines *where* a request is memory-bound, so the
//! speedup of a faster memory system is distributed correctly along the
//! request instead of scaled uniformly.

use rbv_core::series::{SamplePeriod, Timeline};
use rbv_mem::MachineSpec;

/// Projects request timelines measured on one machine onto another.
#[derive(Debug, Clone, Copy)]
pub struct PlatformProjection {
    /// The machine the timeline was measured on.
    pub source: MachineSpec,
    /// The machine to predict for.
    pub target: MachineSpec,
}

impl PlatformProjection {
    /// Creates the projection.
    pub fn new(source: MachineSpec, target: MachineSpec) -> PlatformProjection {
        PlatformProjection { source, target }
    }

    /// Projects a single sample period, optionally transforming its miss
    /// ratio (e.g. when the target's cache capacity differs, feed the
    /// output of [`rbv_mem::model::miss_ratio`] at the new share).
    ///
    /// Periods with no instructions or no references pass through with
    /// only their base cycles (nothing memory-bound to rescale).
    pub fn project_period(
        &self,
        period: &SamplePeriod,
        miss_transform: Option<&dyn Fn(f64) -> f64>,
    ) -> SamplePeriod {
        if period.instructions <= 0.0 || period.l2_refs <= 0.0 {
            return *period;
        }
        let m_src = (period.l2_misses / period.l2_refs).clamp(0.0, 1.0);
        let m_tgt = miss_transform.map_or(m_src, |f| f(m_src).clamp(0.0, 1.0));

        let src_stall = period.l2_refs
            * (self.source.l2_hit_cycles * (1.0 - m_src) + self.source.mem_base_cycles * m_src);
        // The core-local portion cannot be negative: clamp against
        // measurement noise on the counters.
        let base = (period.cycles - src_stall).max(period.instructions * 0.1);
        let tgt_stall = period.l2_refs
            * (self.target.l2_hit_cycles * (1.0 - m_tgt) + self.target.mem_base_cycles * m_tgt);
        SamplePeriod {
            cycles: base + tgt_stall,
            instructions: period.instructions,
            l2_refs: period.l2_refs,
            l2_misses: m_tgt * period.l2_refs,
        }
    }

    /// Projects a whole request timeline.
    pub fn project_timeline(&self, timeline: &Timeline) -> Timeline {
        Timeline::from_periods(
            timeline
                .periods()
                .iter()
                .map(|p| self.project_period(p, None))
                .collect(),
        )
    }

    /// Predicted whole-request speedup: source CPU cycles over projected
    /// target CPU cycles. Returns `None` for empty timelines.
    pub fn speedup(&self, timeline: &Timeline) -> Option<f64> {
        let src = timeline.total_cycles();
        if src <= 0.0 {
            return None;
        }
        let tgt = self.project_timeline(timeline).total_cycles();
        (tgt > 0.0).then(|| src / tgt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(hit: f64, mem: f64) -> MachineSpec {
        MachineSpec {
            l2_hit_cycles: hit,
            mem_base_cycles: mem,
            ..MachineSpec::xeon_5160()
        }
    }

    fn period(cycles: f64, ins: f64, refs: f64, misses: f64) -> SamplePeriod {
        SamplePeriod {
            cycles,
            instructions: ins,
            l2_refs: refs,
            l2_misses: misses,
        }
    }

    #[test]
    fn identity_projection_is_a_noop() {
        let m = machine(14.0, 250.0);
        let proj = PlatformProjection::new(m, m);
        let p = period(10_000.0, 5_000.0, 50.0, 25.0);
        let out = proj.project_period(&p, None);
        assert!((out.cycles - p.cycles).abs() < 1e-9);
        assert_eq!(out.instructions, p.instructions);
        assert_eq!(out.l2_misses, p.l2_misses);
    }

    #[test]
    fn faster_memory_speeds_up_memory_bound_periods_only() {
        let src = machine(14.0, 250.0);
        let tgt = machine(14.0, 125.0); // 2x faster memory
        let proj = PlatformProjection::new(src, tgt);

        // Memory-bound: half the cycles are memory stalls.
        let refs = 40.0;
        let misses = 40.0;
        let stalls = misses * 250.0;
        let memory_bound = period(stalls * 2.0, 10_000.0, refs, misses);
        let out = proj.project_period(&memory_bound, None);
        // Stall half shrinks 2x: total = base + stall/2 = 0.75x.
        assert!((out.cycles / memory_bound.cycles - 0.75).abs() < 1e-6);

        // Compute-bound: no references at all — unchanged.
        let compute_bound = period(10_000.0, 10_000.0, 0.0, 0.0);
        let out = proj.project_period(&compute_bound, None);
        assert_eq!(out.cycles, compute_bound.cycles);
    }

    #[test]
    fn miss_transform_applies_target_cache_effect() {
        let src = machine(14.0, 250.0);
        let tgt = machine(14.0, 250.0);
        let proj = PlatformProjection::new(src, tgt);
        let p = period(30_000.0, 10_000.0, 100.0, 80.0);
        // A bigger target cache halves the miss ratio.
        let out = proj.project_period(&p, Some(&|m| m * 0.5));
        assert!((out.l2_misses - 40.0).abs() < 1e-9);
        assert!(out.cycles < p.cycles);
    }

    #[test]
    fn timeline_projection_preserves_instruction_structure() {
        let src = machine(14.0, 250.0);
        let tgt = machine(10.0, 150.0);
        let proj = PlatformProjection::new(src, tgt);
        let t = Timeline::from_periods(vec![
            period(20_000.0, 10_000.0, 60.0, 30.0),
            period(15_000.0, 12_000.0, 10.0, 2.0),
        ]);
        let out = proj.project_timeline(&t);
        assert_eq!(out.len(), t.len());
        assert_eq!(out.total_instructions(), t.total_instructions());
        assert!(out.total_cycles() < t.total_cycles());
        let s = proj.speedup(&t).unwrap();
        assert!(s > 1.0 && s < 2.0, "speedup {s}");
    }

    #[test]
    fn base_cycles_never_go_negative() {
        let src = machine(14.0, 250.0);
        let tgt = machine(14.0, 500.0);
        let proj = PlatformProjection::new(src, tgt);
        // Inconsistent counters (noise): stalls exceed measured cycles.
        let p = period(1_000.0, 1_000.0, 100.0, 100.0);
        let out = proj.project_period(&p, None);
        assert!(out.cycles.is_finite() && out.cycles > 0.0);
    }

    #[test]
    fn degenerate_periods_pass_through() {
        let proj = PlatformProjection::new(machine(14.0, 250.0), machine(7.0, 100.0));
        let empty = period(0.0, 0.0, 0.0, 0.0);
        assert_eq!(proj.project_period(&empty, None), empty);
        let no_refs = period(500.0, 400.0, 0.0, 0.0);
        assert_eq!(proj.project_period(&no_refs, None), no_refs);
        assert_eq!(proj.speedup(&Timeline::new()), None);
    }
}
