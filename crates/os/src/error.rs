//! The workspace error type.
//!
//! The simulated kernel and the `repro` CLI used to panic (`unwrap` /
//! `expect`) or pass bare `String`s on failure paths. [`RbvError`] replaces
//! both: configuration validation, fault-plan construction, and CLI
//! plumbing all return `Result<_, RbvError>` and the binary maps each
//! variant to a non-zero exit code.

use std::fmt;
use std::io;

/// Everything that can go wrong between a command line and a finished
/// simulation run.
#[derive(Debug)]
pub enum RbvError {
    /// An invalid [`crate::SimConfig`] (or fault plan) field combination.
    /// The message names the first inconsistent field.
    Config(String),
    /// A malformed command line: unknown flag, missing value, bad number.
    Cli(String),
    /// An I/O failure writing traces, metrics, or reports.
    Io(io::Error),
}

impl RbvError {
    /// The process exit code the `repro` binary maps this error to:
    /// usage errors exit 2 (the Unix convention), everything else 1.
    pub fn exit_code(&self) -> u8 {
        match self {
            RbvError::Cli(_) => 2,
            RbvError::Config(_) | RbvError::Io(_) => 1,
        }
    }
}

impl fmt::Display for RbvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbvError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            RbvError::Cli(msg) => write!(f, "{msg}"),
            RbvError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for RbvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RbvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RbvError {
    fn from(e: io::Error) -> RbvError {
        RbvError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_distinguish_usage_errors() {
        assert_eq!(RbvError::Cli("bad flag".into()).exit_code(), 2);
        assert_eq!(RbvError::Config("bad field".into()).exit_code(), 1);
        assert_eq!(RbvError::from(io::Error::other("disk")).exit_code(), 1);
    }

    #[test]
    fn display_is_informative() {
        let e = RbvError::Config("quantum must be nonzero".into());
        assert!(e.to_string().contains("quantum"));
        let e = RbvError::Io(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
    }
}
