//! Observer-effect cost accountant (§3.4, "do no harm").
//!
//! The paper's measurement infrastructure promises to stay within a fixed
//! fraction of the machine: sampling must not consume more than about one
//! percent of the cycles the workload itself uses. This module turns a
//! run's per-mode sample counts into that ledger line: each sampling hook
//! ([`SampleMode`]) is priced at its Table 1 context cost, summed, and
//! compared against the budget to report the remaining slack.
//!
//! The accountant prices samples at the Mbench-Spin floor
//! ([`spin_baseline`]), matching the engine's "do no harm" compensation,
//! which subtracts exactly that minimum from the counter stream. The
//! reported overhead is therefore the *guaranteed* cost — cache pollution
//! can only add to it, and that surplus is already visible in the
//! workload's own counters.

use crate::observer::{spin_baseline, SampleMode};
use crate::result::RunStats;
use rbv_telemetry::Json;

/// "Do no harm" budget: sampling may spend at most this fraction of the
/// workload's busy cycles (§3.4).
pub const DO_NO_HARM_BUDGET: f64 = 0.01;

/// The priced cost of one sampling mode over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeCost {
    /// Which sampling hook.
    pub mode: SampleMode,
    /// Samples the hook took.
    pub samples: u64,
    /// Per-sample price in cycles (the mode's Table 1 context floor).
    pub cycles_per_sample: f64,
    /// Total simulated cycles attributed to the mode.
    pub cycles: f64,
    /// Total instructions the mode's handler retired.
    pub instructions: f64,
}

/// Per-run observer-effect accounting: what measurement cost, mode by
/// mode, against the "do no harm" budget.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserverReport {
    /// Cost per sampling mode, in [`SampleMode::ALL`] order.
    pub per_mode: [ModeCost; 4],
    /// Total cycles attributed to sampling.
    pub total_cycles: f64,
    /// The workload's busy cycles (the budget denominator).
    pub busy_cycles: f64,
    /// The budget fraction the report was judged against
    /// ([`DO_NO_HARM_BUDGET`]).
    pub budget_frac: f64,
}

impl ObserverReport {
    /// Prices a run's per-mode sample counts into an observer report.
    pub fn account(stats: &RunStats) -> ObserverReport {
        let per_mode = SampleMode::ALL.map(|mode| {
            let cost = spin_baseline(mode.context());
            let samples = stats.samples_by_mode[mode.index()];
            ModeCost {
                mode,
                samples,
                cycles_per_sample: cost.cycles,
                cycles: samples as f64 * cost.cycles,
                instructions: samples as f64 * cost.instructions,
            }
        });
        ObserverReport {
            per_mode,
            total_cycles: per_mode.iter().map(|m| m.cycles).sum(),
            busy_cycles: stats.busy_cycles,
            budget_frac: DO_NO_HARM_BUDGET,
        }
    }

    /// Measured overhead as a fraction of busy cycles (0 when the run did
    /// no work).
    pub fn overhead_frac(&self) -> f64 {
        if self.busy_cycles > 0.0 {
            self.total_cycles / self.busy_cycles
        } else {
            0.0
        }
    }

    /// Remaining budget: `budget - measured` (negative when over).
    pub fn slack_frac(&self) -> f64 {
        self.budget_frac - self.overhead_frac()
    }

    /// Whether measurement stayed within the "do no harm" budget.
    pub fn within_budget(&self) -> bool {
        self.overhead_frac() <= self.budget_frac
    }

    /// Serializes the report for the run ledger: per-mode breakdown plus
    /// the budget verdict.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "per_mode".into(),
                Json::Obj(
                    self.per_mode
                        .iter()
                        .map(|m| {
                            (
                                m.mode.label().to_string(),
                                Json::Obj(vec![
                                    ("samples".into(), Json::Num(m.samples as f64)),
                                    ("cycles_per_sample".into(), Json::Num(m.cycles_per_sample)),
                                    ("cycles".into(), Json::Num(m.cycles)),
                                    ("instructions".into(), Json::Num(m.instructions)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            ("total_cycles".into(), Json::Num(self.total_cycles)),
            ("busy_cycles".into(), Json::Num(self.busy_cycles)),
            ("overhead_frac".into(), Json::Num(self.overhead_frac())),
            ("budget_frac".into(), Json::Num(self.budget_frac)),
            ("slack_frac".into(), Json::Num(self.slack_frac())),
            ("within_budget".into(), Json::Bool(self.within_budget())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::SamplingContext;

    fn stats_with(modes: [u64; 4], busy: f64) -> RunStats {
        let mut s = RunStats {
            busy_cycles: busy,
            samples_by_mode: modes,
            ..RunStats::default()
        };
        s.samples_inkernel = modes[0] + modes[1];
        s.samples_interrupt = modes[2] + modes[3];
        s
    }

    #[test]
    fn account_prices_each_mode_at_its_context() {
        let stats = stats_with([10, 5, 3, 2], 1e9);
        let report = ObserverReport::account(&stats);
        let ik = spin_baseline(SamplingContext::InKernel).cycles;
        let ir = spin_baseline(SamplingContext::Interrupt).cycles;
        assert_eq!(report.per_mode[0].cycles, 10.0 * ik);
        assert_eq!(report.per_mode[1].cycles, 5.0 * ik);
        assert_eq!(report.per_mode[2].cycles, 3.0 * ir);
        assert_eq!(report.per_mode[3].cycles, 2.0 * ir);
        assert!((report.total_cycles - (15.0 * ik + 5.0 * ir)).abs() < 1e-6);
        // Consistent with the aggregate pricing on RunStats (up to float
        // summation order).
        assert!((report.total_cycles - stats.sampling_overhead_cycles()).abs() < 1e-6);
    }

    #[test]
    fn budget_verdict_flips_when_overhead_exceeds_one_percent() {
        let ik = spin_baseline(SamplingContext::InKernel).cycles;
        // 100 in-kernel samples against plenty of work: inside budget.
        let ok = ObserverReport::account(&stats_with([100, 0, 0, 0], 100.0 * ik / 0.001));
        assert!(ok.within_budget());
        assert!(ok.slack_frac() > 0.0);
        // The same samples against barely any work: over budget.
        let over = ObserverReport::account(&stats_with([100, 0, 0, 0], 100.0 * ik / 0.05));
        assert!(!over.within_budget());
        assert!(over.slack_frac() < 0.0);
    }

    #[test]
    fn idle_run_has_zero_overhead() {
        let report = ObserverReport::account(&stats_with([0, 0, 0, 0], 0.0));
        assert_eq!(report.overhead_frac(), 0.0);
        assert!(report.within_budget());
    }

    #[test]
    fn json_reports_every_mode_by_label() {
        let report = ObserverReport::account(&stats_with([1, 2, 3, 4], 1e9));
        let json = report.to_json();
        let per_mode = json.get("per_mode").expect("per_mode member");
        for mode in SampleMode::ALL {
            let entry = per_mode.get(mode.label()).expect("mode entry");
            let samples = entry.get("samples").and_then(Json::as_f64).unwrap();
            assert_eq!(samples, (mode.index() + 1) as f64);
        }
        assert_eq!(
            json.get("within_budget"),
            Some(&Json::Bool(report.within_budget()))
        );
    }
}
