//! Sampling cost and observer-effect modeling (§3.1, Table 1).
//!
//! Reading counters and updating per-CPU/per-request statistics costs time
//! and *produces additional processor events* that pollute the collected
//! metrics — the observer effect. The paper measures this per-sample cost
//! in two contexts (in-kernel, e.g. at a context switch or syscall, vs. at
//! an APIC interrupt with its extra user/kernel domain switch) under two
//! workloads bracketing the cache-pollution range (Mbench-Spin and
//! Mbench-Data).
//!
//! We reproduce Table 1 by *measuring* the cache behavior of a modeled
//! sampling handler against the trace-driven hierarchy: the handler
//! executes a fixed instruction path and touches a fixed set of statistics
//! cache lines; a polluting workload evicts those lines between samples,
//! so each sample re-fetches them (the "+13 L2 references" row). Cycle
//! costs combine the handler path, the measured memory behavior, and the
//! domain-switch constants.
//!
//! The engine injects these costs into the counter stream at every sample
//! and, per the paper's "do no harm" principle, compensation subtracts the
//! *minimum* (Mbench-Spin) effect only.

use rbv_mem::hierarchy::AccessLevel;
use rbv_mem::trace::Access;
use rbv_mem::MemoryHierarchy;

/// Where a sample is taken (Table 1's two contexts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplingContext {
    /// Already in the kernel: context switch or system call entrance.
    InKernel,
    /// An APIC interrupt, paying an extra user/kernel domain switch.
    Interrupt,
}

/// Which sampling hook took a sample — the attribution axis of the
/// observer-effect cost accountant. Each mode maps onto one of Table 1's
/// two cost contexts via [`SampleMode::context`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SampleMode {
    /// Context-switch flush: quantum rotation, stage handoff, or a
    /// contention-easing displacement.
    ContextSwitch,
    /// A system-call entrance trigger (transition-signal sampling).
    SyscallEntry,
    /// The periodic APIC sampling interrupt.
    Apic,
    /// The backup interrupt timer covering a syscall-free stretch.
    BackupTimer,
}

impl SampleMode {
    /// Every mode, in the fixed reporting order used by ledgers.
    pub const ALL: [SampleMode; 4] = [
        SampleMode::ContextSwitch,
        SampleMode::SyscallEntry,
        SampleMode::Apic,
        SampleMode::BackupTimer,
    ];

    /// The Table 1 cost context this mode samples in.
    pub fn context(self) -> SamplingContext {
        match self {
            SampleMode::ContextSwitch | SampleMode::SyscallEntry => SamplingContext::InKernel,
            SampleMode::Apic | SampleMode::BackupTimer => SamplingContext::Interrupt,
        }
    }

    /// Stable snake_case label used in metrics and ledger documents.
    pub fn label(self) -> &'static str {
        match self {
            SampleMode::ContextSwitch => "context_switch",
            SampleMode::SyscallEntry => "syscall_entry",
            SampleMode::Apic => "apic",
            SampleMode::BackupTimer => "backup_timer",
        }
    }

    /// Position in [`SampleMode::ALL`] (indexes per-mode counters).
    pub fn index(self) -> usize {
        match self {
            SampleMode::ContextSwitch => 0,
            SampleMode::SyscallEntry => 1,
            SampleMode::Apic => 2,
            SampleMode::BackupTimer => 3,
        }
    }
}

/// Per-sample cost: time plus the additional hardware events the sampling
/// operation itself produces.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleCost {
    /// Additional CPU cycles.
    pub cycles: f64,
    /// Additional retired instructions.
    pub instructions: f64,
    /// Additional L2 references.
    pub l2_refs: f64,
    /// Additional L2 misses.
    pub l2_misses: f64,
}

impl SampleCost {
    /// Cost in microseconds on the 3 GHz platform.
    pub fn micros(&self) -> f64 {
        self.cycles / 3_000.0
    }

    /// Component-wise subtraction clamped at zero (used by "do no harm"
    /// compensation, which must never over-compensate).
    pub fn saturating_sub(&self, other: &SampleCost) -> SampleCost {
        SampleCost {
            cycles: (self.cycles - other.cycles).max(0.0),
            instructions: (self.instructions - other.instructions).max(0.0),
            l2_refs: (self.l2_refs - other.l2_refs).max(0.0),
            l2_misses: (self.l2_misses - other.l2_misses).max(0.0),
        }
    }
}

/// Handler path constants, calibrated so the Mbench-Spin row of Table 1 is
/// reproduced exactly: 649 instructions at ~1 cycle each plus the
/// in-kernel entry overhead gives the 0.42 µs / 1,270-cycle in-kernel
/// sample; the interrupt path executes 75 more instructions (IRQ entry /
/// exit) and pays a ~1 µs domain switch.
pub mod handler {
    /// Instructions executed by the in-kernel sampling path.
    pub const INKERNEL_INSTRUCTIONS: f64 = 649.0;
    /// Instructions executed by the interrupt sampling path.
    pub const INTERRUPT_INSTRUCTIONS: f64 = 724.0;
    /// Base CPI of the handler's instruction path (cache-hot).
    pub const PATH_CPI: f64 = 0.96;
    /// Fixed in-kernel entry cost in cycles (register save, bookkeeping).
    pub const INKERNEL_ENTRY_CYCLES: f64 = 647.0;
    /// Fixed interrupt entry cost in cycles (domain switch, APIC EOI).
    pub const INTERRUPT_ENTRY_CYCLES: f64 = 1_581.0;
    /// Distinct statistics cache lines the handler touches (per-CPU and
    /// per-request accumulators).
    pub const STAT_LINES: usize = 13;
    /// Byte address where the statistics lines live in the trace model.
    pub const STAT_BASE_ADDR: u64 = 0x4000_0000;
    /// L2 hit latency used to convert measured references into cycles.
    pub const L2_HIT_CYCLES: f64 = 14.0;
    /// Memory latency for measured misses.
    pub const MEM_CYCLES: f64 = 250.0;
}

/// Measures the per-sample cost under a given workload by replaying
/// `samples` sampling-handler executions against the trace-driven
/// hierarchy, interleaved with `workload_accesses_per_sample` accesses of
/// the workload trace (the cache pollution between samples).
///
/// Returns the average per-sample cost. This is the Table 1 measurement
/// procedure.
///
/// # Panics
///
/// Panics if `samples` is zero or the workload trace ends prematurely.
pub fn measure_sampling_cost(
    workload: &mut dyn Iterator<Item = Access>,
    context: SamplingContext,
    samples: usize,
    workload_accesses_per_sample: usize,
) -> SampleCost {
    assert!(samples > 0, "need at least one sample");
    let mut machine = MemoryHierarchy::xeon_5160();
    let core = 0usize;

    // Warm the handler's statistics lines once (steady-state measurement).
    for line in 0..handler::STAT_LINES {
        machine.access(core, handler::STAT_BASE_ADDR + (line as u64) * 64, true);
    }

    let (path_ins, entry_cycles) = match context {
        SamplingContext::InKernel => (
            handler::INKERNEL_INSTRUCTIONS,
            handler::INKERNEL_ENTRY_CYCLES,
        ),
        SamplingContext::Interrupt => (
            handler::INTERRUPT_INSTRUCTIONS,
            handler::INTERRUPT_ENTRY_CYCLES,
        ),
    };

    let mut total = SampleCost::default();
    for _ in 0..samples {
        // Workload runs between samples, possibly evicting the stat lines.
        for _ in 0..workload_accesses_per_sample {
            let Some(a) = workload.next() else {
                unreachable!("workload trace is infinite");
            };
            machine.access(core, a.addr, a.is_write);
        }
        // The handler reads counters and updates statistics in memory.
        let mut refs = 0.0;
        let mut misses = 0.0;
        for line in 0..handler::STAT_LINES {
            let addr = handler::STAT_BASE_ADDR + (line as u64) * 64;
            match machine.access(core, addr, true) {
                AccessLevel::L1 => {}
                AccessLevel::L2 => refs += 1.0,
                AccessLevel::Memory => {
                    refs += 1.0;
                    misses += 1.0;
                }
            }
        }
        let cycles = entry_cycles
            + path_ins * handler::PATH_CPI
            + refs * handler::L2_HIT_CYCLES
            + misses * handler::MEM_CYCLES;
        total.cycles += cycles;
        total.instructions += path_ins;
        total.l2_refs += refs;
        total.l2_misses += misses;
    }

    SampleCost {
        cycles: total.cycles / samples as f64,
        instructions: total.instructions / samples as f64,
        l2_refs: total.l2_refs / samples as f64,
        l2_misses: total.l2_misses / samples as f64,
    }
}

/// The calibrated per-sample costs the execution engine injects, matching
/// the Mbench-Spin rows of Table 1 (the "do no harm" minimum):
/// 1,270 cycles / 649 instructions in-kernel, 2,276 cycles / 724
/// instructions at an interrupt, no measurable L2 events.
pub fn spin_baseline(context: SamplingContext) -> SampleCost {
    match context {
        SamplingContext::InKernel => SampleCost {
            cycles: handler::INKERNEL_ENTRY_CYCLES
                + handler::INKERNEL_INSTRUCTIONS * handler::PATH_CPI,
            instructions: handler::INKERNEL_INSTRUCTIONS,
            l2_refs: 0.0,
            l2_misses: 0.0,
        },
        SamplingContext::Interrupt => SampleCost {
            cycles: handler::INTERRUPT_ENTRY_CYCLES
                + handler::INTERRUPT_INSTRUCTIONS * handler::PATH_CPI,
            instructions: handler::INTERRUPT_INSTRUCTIONS,
            l2_refs: 0.0,
            l2_misses: 0.0,
        },
    }
}

/// The workload-dependent cost the engine injects at a sample, given the
/// running segment's cache-pollution intensity in `[0, 1]` (0 =
/// Mbench-Spin-like, 1 = Mbench-Data-like). Interpolates between the spin
/// baseline and the polluted cost (stat lines demoted to L2).
pub fn injected_cost(context: SamplingContext, pollution: f64) -> SampleCost {
    let p = pollution.clamp(0.0, 1.0);
    let base = spin_baseline(context);
    let extra_refs = handler::STAT_LINES as f64 * p;
    SampleCost {
        cycles: base.cycles + extra_refs * handler::L2_HIT_CYCLES * 0.57,
        instructions: base.instructions,
        l2_refs: extra_refs,
        l2_misses: 0.0,
    }
}

/// Cache-pollution intensity of a segment profile, mapping reference
/// pressure and footprint onto `[0, 1]`. A segment streaming far beyond
/// the L1 evicts the handler's statistics lines between samples.
pub fn pollution_of(profile: &rbv_mem::SegmentProfile) -> f64 {
    // L1 is 32 KB: footprints beyond it progressively evict stat lines;
    // the reference rate scales how fast.
    let footprint = (profile.working_set_bytes / (256.0 * 1024.0)).min(1.0);
    let rate = (profile.l2_refs_per_ins / 0.02).min(1.0);
    footprint * rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbv_sim::SimRng;
    use rbv_workloads::mbench::{mbench_data_trace, mbench_spin_trace};

    #[test]
    fn spin_baseline_matches_table1() {
        let ik = spin_baseline(SamplingContext::InKernel);
        assert!((ik.cycles - 1_270.0).abs() < 5.0, "in-kernel {}", ik.cycles);
        assert_eq!(ik.instructions, 649.0);
        assert!((ik.micros() - 0.42).abs() < 0.01);

        let ir = spin_baseline(SamplingContext::Interrupt);
        assert!((ir.cycles - 2_276.0).abs() < 5.0, "interrupt {}", ir.cycles);
        assert_eq!(ir.instructions, 724.0);
        assert!((ir.micros() - 0.76).abs() < 0.01);
    }

    #[test]
    fn measured_spin_has_no_l2_events() {
        let mut w = mbench_spin_trace();
        let c = measure_sampling_cost(&mut w, SamplingContext::InKernel, 200, 500);
        assert_eq!(c.l2_refs, 0.0, "spin must not evict stat lines");
        assert_eq!(c.l2_misses, 0.0);
        assert!((c.cycles - spin_baseline(SamplingContext::InKernel).cycles).abs() < 1.0);
    }

    #[test]
    fn measured_data_evicts_stat_lines() {
        // Mbench-Data pollutes the cache between samples: the handler
        // re-fetches its statistics lines -> ~13 extra L2 references
        // (Table 1's "+13 L2 ref" row).
        let mut w = mbench_data_trace(SimRng::seed_from(1));
        // 100k accesses between samples stream 400 KB >> 32 KB L1.
        let c = measure_sampling_cost(&mut w, SamplingContext::InKernel, 50, 100_000);
        assert!(
            (c.l2_refs - handler::STAT_LINES as f64).abs() < 1.0,
            "expected ~13 L2 refs, measured {}",
            c.l2_refs
        );
        // Costlier than under spin.
        assert!(c.cycles > spin_baseline(SamplingContext::InKernel).cycles + 50.0);
    }

    #[test]
    fn interrupt_costs_more_than_inkernel() {
        let mut w1 = mbench_spin_trace();
        let mut w2 = mbench_spin_trace();
        let ik = measure_sampling_cost(&mut w1, SamplingContext::InKernel, 50, 100);
        let ir = measure_sampling_cost(&mut w2, SamplingContext::Interrupt, 50, 100);
        assert!(ir.cycles > ik.cycles + 900.0, "domain switch must show");
        assert!(ir.instructions > ik.instructions);
    }

    #[test]
    fn injected_cost_interpolates_with_pollution() {
        let clean = injected_cost(SamplingContext::InKernel, 0.0);
        let dirty = injected_cost(SamplingContext::InKernel, 1.0);
        assert_eq!(clean.l2_refs, 0.0);
        assert!((dirty.l2_refs - 13.0).abs() < 1e-12);
        assert!(dirty.cycles > clean.cycles);
        // Out-of-range pollution is clamped.
        assert_eq!(injected_cost(SamplingContext::InKernel, 7.0), dirty);
    }

    #[test]
    fn pollution_extremes_match_microbenchmarks() {
        use rbv_workloads::mbench::{data_profile, spin_profile};
        assert_eq!(pollution_of(&spin_profile()), 0.0);
        assert!(pollution_of(&data_profile()) > 0.99);
    }

    #[test]
    fn sample_modes_partition_the_table1_contexts() {
        for (i, mode) in SampleMode::ALL.iter().enumerate() {
            assert_eq!(mode.index(), i);
        }
        assert_eq!(
            SampleMode::ContextSwitch.context(),
            SamplingContext::InKernel
        );
        assert_eq!(
            SampleMode::SyscallEntry.context(),
            SamplingContext::InKernel
        );
        assert_eq!(SampleMode::Apic.context(), SamplingContext::Interrupt);
        assert_eq!(
            SampleMode::BackupTimer.context(),
            SamplingContext::Interrupt
        );
        // Labels are distinct (they key metrics and ledger entries).
        let labels: std::collections::BTreeSet<_> =
            SampleMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn saturating_sub_never_negative() {
        let a = SampleCost {
            cycles: 10.0,
            instructions: 5.0,
            l2_refs: 1.0,
            l2_misses: 0.0,
        };
        let b = SampleCost {
            cycles: 20.0,
            instructions: 2.0,
            l2_refs: 5.0,
            l2_misses: 0.0,
        };
        let d = a.saturating_sub(&b);
        assert_eq!(d.cycles, 0.0);
        assert_eq!(d.instructions, 3.0);
        assert_eq!(d.l2_refs, 0.0);
    }
}
