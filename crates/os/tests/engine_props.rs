//! Property-based tests of the execution engine: randomized configurations
//! must preserve the accounting invariants no matter how the scheduler,
//! sampling, and arrival knobs are combined.

use proptest::prelude::*;

use rbv_core::series::Metric;
use rbv_os::config::ArrivalProcess;
use rbv_os::{run_simulation, SamplingPolicy, SchedulerPolicy, SimConfig};
use rbv_sim::Cycles;
use rbv_workloads::{factory_for, AppId};

fn app_strategy() -> impl Strategy<Value = AppId> {
    prop::sample::select(vec![AppId::WebServer, AppId::Tpcc, AppId::Rubis])
}

fn sampling_strategy() -> impl Strategy<Value = SamplingPolicy> {
    prop_oneof![
        Just(SamplingPolicy::ContextSwitchOnly),
        (5u64..200).prop_map(|us| SamplingPolicy::Interrupt {
            period: Cycles::from_micros(us),
        }),
        (2u64..50, 4u64..40).prop_map(|(min, mult)| SamplingPolicy::SyscallTriggered {
            t_syscall_min: Cycles::from_micros(min),
            t_backup_int: Cycles::from_micros(min * mult),
        }),
    ]
}

proptest! {
    // Each case runs a full simulation; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_invariants_hold_under_random_configs(
        app in app_strategy(),
        seed in 0u64..1_000,
        concurrency in 1usize..16,
        quantum_us in 100u64..200_000,
        sampling in sampling_strategy(),
        contention_easing in prop::bool::ANY,
        work_stealing in prop::bool::ANY,
        open_loop in prop::bool::ANY,
        noise in 0.0f64..0.3,
    ) {
        let mut cfg = SimConfig::paper_default();
        cfg.seed = seed;
        cfg.concurrency = concurrency;
        cfg.quantum = Cycles::from_micros(quantum_us);
        cfg.sampling = sampling;
        cfg.counter_noise = noise;
        cfg.work_stealing = work_stealing;
        if contention_easing {
            cfg.scheduler = SchedulerPolicy::ContentionEasing {
                resched_interval: Cycles::from_millis(5),
                high_usage_threshold: 0.004,
                alpha: 0.6,
            };
        }
        if open_loop {
            cfg.arrivals = ArrivalProcess::OpenPoisson {
                mean_interarrival: Cycles::from_micros(200),
            };
        }

        let n = 8;
        let mut reference = factory_for(app, seed, 0.05);
        let expected_ins: f64 = (0..n)
            .map(|_| reference.next_request().total_instructions().as_f64())
            .sum();
        let mut factory = factory_for(app, seed, 0.05);
        let result = run_simulation(cfg, factory.as_mut(), n).expect("valid random config");

        // Completion and conservation.
        prop_assert_eq!(result.completed.len(), n);
        let measured: f64 = result
            .completed
            .iter()
            .map(|r| r.timeline.total_instructions())
            .sum();
        let rel = (measured - expected_ins).abs() / expected_ins;
        prop_assert!(rel < 0.08, "instruction drift {rel}");

        // Per-request sanity.
        let mut ids = Vec::new();
        for r in &result.completed {
            ids.push(r.id);
            let cpi = r.request_cpi().expect("instructions retired");
            prop_assert!(cpi.is_finite() && cpi > 0.1 && cpi < 100.0, "CPI {cpi}");
            prop_assert!(r.finished_at >= r.arrived_at);
            for p in r.timeline.periods() {
                prop_assert!(p.cycles >= 0.0 && p.instructions >= 0.0);
                prop_assert!(p.l2_misses <= p.l2_refs + 1e-9);
                if let Some(m) = p.value(Metric::L2MissesPerRef) {
                    prop_assert!((0.0..=1.0 + 1e-9).contains(&m));
                }
            }
            // Syscall records are ordered along the request.
            for w in r.syscalls.windows(2) {
                prop_assert!(w[0].request_ins <= w[1].request_ins + 1e-9);
                prop_assert!(w[0].at <= w[1].at);
            }
        }
        // No request lost or duplicated.
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n);

        // Stats aggregates are consistent.
        prop_assert!(result.stats.busy_cycles > 0.0);
        let high_total: f64 = result.stats.high_usage_cycles.iter().sum();
        prop_assert!(high_total <= result.stats.busy_cycles + 1e-6);
        prop_assert!(result.total_time >= Cycles::new(1));
    }
}
