//! Per-request counter timelines and metric time series.
//!
//! The OS sampling machinery produces, for each request, a sequence of
//! *sample periods* — hardware counter deltas between consecutive sampling
//! moments, serialized across the request's (possibly interleaved)
//! execution periods into one continuous timeline (§2.1). Request modeling
//! (§4.1) then needs sequences of metric values over *fixed-length*
//! periods; [`Timeline::series`] resamples the raw periods into
//! equal-instruction buckets, producing the [`MetricSeries`] the
//! differencing measures operate on.

/// A hardware counter metric derived from one sample period, per §2/§3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// CPU cycles per retired instruction.
    Cpi,
    /// L2 cache references per instruction (shared-resource *usage*).
    L2RefsPerIns,
    /// L2 misses per reference (shared-resource *performance*).
    L2MissesPerRef,
    /// L2 misses per instruction (the scheduling metric of §5.2).
    L2MissesPerIns,
}

impl Metric {
    /// All metrics, in the paper's reporting order.
    pub const ALL: [Metric; 4] = [
        Metric::Cpi,
        Metric::L2RefsPerIns,
        Metric::L2MissesPerRef,
        Metric::L2MissesPerIns,
    ];
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Metric::Cpi => "cycles/ins",
            Metric::L2RefsPerIns => "L2 refs/ins",
            Metric::L2MissesPerRef => "L2 misses/ref",
            Metric::L2MissesPerIns => "L2 misses/ins",
        };
        f.write_str(name)
    }
}

/// Counter deltas accumulated between two consecutive sampling moments.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SamplePeriod {
    /// Elapsed CPU cycles.
    pub cycles: f64,
    /// Retired instructions.
    pub instructions: f64,
    /// L2 cache references.
    pub l2_refs: f64,
    /// L2 cache misses.
    pub l2_misses: f64,
}

impl SamplePeriod {
    /// The metric value for this period; `None` when the denominator is
    /// zero (e.g. CPI of a period that retired nothing).
    pub fn value(&self, metric: Metric) -> Option<f64> {
        let (num, den) = self.fraction_parts(metric);
        (den > 0.0).then(|| num / den)
    }

    /// Numerator/denominator pair defining `metric`.
    pub fn fraction_parts(&self, metric: Metric) -> (f64, f64) {
        match metric {
            Metric::Cpi => (self.cycles, self.instructions),
            Metric::L2RefsPerIns => (self.l2_refs, self.instructions),
            Metric::L2MissesPerRef => (self.l2_misses, self.l2_refs),
            Metric::L2MissesPerIns => (self.l2_misses, self.instructions),
        }
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &SamplePeriod) -> SamplePeriod {
        SamplePeriod {
            cycles: self.cycles + other.cycles,
            instructions: self.instructions + other.instructions,
            l2_refs: self.l2_refs + other.l2_refs,
            l2_misses: self.l2_misses + other.l2_misses,
        }
    }
}

/// A request's serialized sequence of sample periods.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Timeline {
    periods: Vec<SamplePeriod>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Builds directly from periods.
    pub fn from_periods(periods: Vec<SamplePeriod>) -> Timeline {
        Timeline { periods }
    }

    /// Appends one period (skipping completely empty ones).
    pub fn push(&mut self, period: SamplePeriod) {
        if period.cycles > 0.0 || period.instructions > 0.0 {
            self.periods.push(period);
        }
    }

    /// The raw periods.
    pub fn periods(&self) -> &[SamplePeriod] {
        &self.periods
    }

    /// Number of periods.
    pub fn len(&self) -> usize {
        self.periods.len()
    }

    /// True when no periods were recorded.
    pub fn is_empty(&self) -> bool {
        self.periods.is_empty()
    }

    /// Counter totals over the whole request.
    pub fn totals(&self) -> SamplePeriod {
        self.periods
            .iter()
            .fold(SamplePeriod::default(), |acc, p| acc.merged(p))
    }

    /// Total CPU cycles consumed (the request "CPU time" of Figure 7A).
    pub fn total_cycles(&self) -> f64 {
        self.periods.iter().map(|p| p.cycles).sum()
    }

    /// Total retired instructions.
    pub fn total_instructions(&self) -> f64 {
        self.periods.iter().map(|p| p.instructions).sum()
    }

    /// Whole-request average metric value (e.g. the per-request CPI of
    /// Figure 1: total cycles over total instructions).
    pub fn average(&self, metric: Metric) -> Option<f64> {
        self.totals().value(metric)
    }

    /// Per-period `(length, value)` pairs for CoV/RMSE computations, using
    /// instruction counts as period lengths. Periods with an undefined
    /// metric are skipped.
    pub fn weighted_values(&self, metric: Metric) -> (Vec<f64>, Vec<f64>) {
        let mut lengths = Vec::with_capacity(self.periods.len());
        let mut values = Vec::with_capacity(self.periods.len());
        for p in &self.periods {
            if let Some(v) = p.value(metric) {
                lengths.push(p.instructions);
                values.push(v);
            }
        }
        (lengths, values)
    }

    /// Resamples into a [`MetricSeries`] of equal-instruction buckets.
    ///
    /// Counter deltas are distributed over buckets assuming uniform rates
    /// within each period, then the metric is formed per bucket. A trailing
    /// partial bucket is kept if it covers at least half of `bucket_ins`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_ins` is not positive.
    pub fn series(&self, metric: Metric, bucket_ins: f64) -> MetricSeries {
        assert!(bucket_ins > 0.0, "bucket size must be positive");
        let total_ins = self.total_instructions();
        let n_full = (total_ins / bucket_ins) as usize;
        let tail = total_ins - n_full as f64 * bucket_ins;
        let n = n_full + usize::from(tail >= bucket_ins * 0.5);
        let mut num = vec![0.0f64; n];
        let mut den = vec![0.0f64; n];

        let mut pos = 0.0f64; // cumulative instructions so far
        for p in &self.periods {
            if p.instructions <= 0.0 {
                continue;
            }
            let (pnum, pden) = p.fraction_parts(metric);
            let start = pos;
            let end = pos + p.instructions;
            pos = end;
            // Spread this period across the buckets it overlaps.
            let first = (start / bucket_ins) as usize;
            let last = ((end / bucket_ins) as usize).min(n.saturating_sub(1));
            if n == 0 {
                continue;
            }
            for b in first..=last.max(first) {
                if b >= n {
                    break;
                }
                let b_start = b as f64 * bucket_ins;
                let b_end = b_start + bucket_ins;
                let overlap = (end.min(b_end) - start.max(b_start)).max(0.0);
                let frac = overlap / p.instructions;
                num[b] += pnum * frac;
                den[b] += pden * frac;
            }
        }

        let values = num
            .iter()
            .zip(&den)
            .map(|(&nu, &de)| if de > 0.0 { nu / de } else { 0.0 })
            .collect();
        MetricSeries { values, bucket_ins }
    }
}

/// A metric sampled over fixed-instruction-length buckets: the request
/// signature form the differencing measures of §4.1 compare.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    values: Vec<f64>,
    bucket_ins: f64,
}

impl MetricSeries {
    /// Builds from raw values with a stated bucket size.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_ins` is not positive.
    pub fn from_values(values: Vec<f64>, bucket_ins: f64) -> MetricSeries {
        assert!(bucket_ins > 0.0, "bucket size must be positive");
        MetricSeries { values, bucket_ins }
    }

    /// The bucket length in instructions.
    pub fn bucket_ins(&self) -> f64 {
        self.bucket_ins
    }

    /// The metric values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when there are no buckets.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The first `n` buckets (for online partial-signature matching, §4.4).
    pub fn prefix(&self, n: usize) -> MetricSeries {
        MetricSeries {
            values: self.values[..n.min(self.values.len())].to_vec(),
            bucket_ins: self.bucket_ins,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn period(cycles: f64, ins: f64, refs: f64, misses: f64) -> SamplePeriod {
        SamplePeriod {
            cycles,
            instructions: ins,
            l2_refs: refs,
            l2_misses: misses,
        }
    }

    #[test]
    fn metric_values_from_period() {
        let p = period(200.0, 100.0, 10.0, 5.0);
        assert_eq!(p.value(Metric::Cpi), Some(2.0));
        assert_eq!(p.value(Metric::L2RefsPerIns), Some(0.1));
        assert_eq!(p.value(Metric::L2MissesPerRef), Some(0.5));
        assert_eq!(p.value(Metric::L2MissesPerIns), Some(0.05));
    }

    #[test]
    fn zero_denominator_is_none() {
        let p = period(100.0, 0.0, 0.0, 0.0);
        assert_eq!(p.value(Metric::Cpi), None);
        assert_eq!(p.value(Metric::L2MissesPerRef), None);
    }

    #[test]
    fn timeline_totals_and_average() {
        let mut t = Timeline::new();
        t.push(period(100.0, 50.0, 4.0, 2.0));
        t.push(period(300.0, 100.0, 6.0, 1.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_cycles(), 400.0);
        assert_eq!(t.total_instructions(), 150.0);
        // Request CPI = 400/150.
        assert!((t.average(Metric::Cpi).unwrap() - 400.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn push_skips_empty_periods() {
        let mut t = Timeline::new();
        t.push(SamplePeriod::default());
        assert!(t.is_empty());
    }

    #[test]
    fn weighted_values_skip_undefined() {
        let t = Timeline::from_periods(vec![
            period(100.0, 50.0, 0.0, 0.0),
            period(50.0, 0.0, 0.0, 0.0), // no instructions: CPI undefined
        ]);
        let (lens, vals) = t.weighted_values(Metric::Cpi);
        assert_eq!(lens, vec![50.0]);
        assert_eq!(vals, vec![2.0]);
    }

    #[test]
    fn series_splits_periods_across_buckets() {
        // One period of 100 ins at CPI 2, then 100 ins at CPI 4;
        // bucket = 50 ins -> [2, 2, 4, 4].
        let t = Timeline::from_periods(vec![
            period(200.0, 100.0, 0.0, 0.0),
            period(400.0, 100.0, 0.0, 0.0),
        ]);
        let s = t.series(Metric::Cpi, 50.0);
        assert_eq!(s.len(), 4);
        let expect = [2.0, 2.0, 4.0, 4.0];
        for (v, e) in s.values().iter().zip(expect) {
            assert!((v - e).abs() < 1e-9, "{:?}", s.values());
        }
    }

    #[test]
    fn series_blends_period_boundary_mid_bucket() {
        // 50 ins at CPI 2 then 50 ins at CPI 4, one 100-ins bucket:
        // blended CPI = (100+200)/100 = 3.
        let t = Timeline::from_periods(vec![
            period(100.0, 50.0, 0.0, 0.0),
            period(200.0, 50.0, 0.0, 0.0),
        ]);
        let s = t.series(Metric::Cpi, 100.0);
        assert_eq!(s.len(), 1);
        assert!((s.values()[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn series_keeps_large_tail_drops_small() {
        let t = Timeline::from_periods(vec![period(130.0, 130.0, 0.0, 0.0)]);
        // 130 ins with 50-ins buckets: 2 full + 30-tail (>= 25) kept.
        assert_eq!(t.series(Metric::Cpi, 50.0).len(), 3);
        let t2 = Timeline::from_periods(vec![period(120.0, 120.0, 0.0, 0.0)]);
        // 20-tail (< 25) dropped.
        assert_eq!(t2.series(Metric::Cpi, 50.0).len(), 2);
    }

    #[test]
    fn series_conserves_counters() {
        // Total cycles recovered from buckets ~= timeline total.
        let t = Timeline::from_periods(vec![
            period(123.0, 77.0, 5.0, 2.0),
            period(456.0, 133.0, 9.0, 4.0),
            period(89.0, 40.0, 2.0, 1.0),
        ]);
        let s = t.series(Metric::Cpi, 25.0);
        let recovered: f64 = s.values().iter().map(|v| v * 25.0).sum();
        assert!(
            (recovered - t.total_cycles()).abs() / t.total_cycles() < 0.01,
            "recovered {recovered} vs {}",
            t.total_cycles()
        );
    }

    #[test]
    fn empty_timeline_series_is_empty() {
        let t = Timeline::new();
        assert!(t.series(Metric::Cpi, 10.0).is_empty());
        assert_eq!(t.average(Metric::Cpi), None);
    }

    #[test]
    fn prefix_truncates() {
        let s = MetricSeries::from_values(vec![1.0, 2.0, 3.0], 10.0);
        assert_eq!(s.prefix(2).values(), &[1.0, 2.0]);
        assert_eq!(s.prefix(9).values(), &[1.0, 2.0, 3.0]);
        assert_eq!(s.prefix(2).bucket_ins(), 10.0);
    }

    #[test]
    fn metric_display() {
        assert_eq!(Metric::Cpi.to_string(), "cycles/ins");
        assert_eq!(Metric::L2MissesPerRef.to_string(), "L2 misses/ref");
    }

    #[test]
    #[should_panic(expected = "bucket size must be positive")]
    fn zero_bucket_panics() {
        Timeline::new().series(Metric::Cpi, 0.0);
    }
}
