//! Online request signature identification (§4.4).
//!
//! Shortly after a request starts executing, its *partial* variation
//! pattern is matched against a bank of representative signatures; the
//! closest bank entry's recorded properties then predict the new request's
//! — e.g. whether its CPU consumption will land above or below the
//! workload median — well before it finishes. The paper uses L2 references
//! per instruction as the signature metric (inherent behavior, free of
//! dynamic L2 contention) and the L1 distance for its low online cost.
//!
//! Three predictors are compared in Figure 10:
//!
//! * [`SignatureBank`] with variation-pattern matching (this paper);
//! * [`SignatureBank::identify_by_average`] — average-metric-value
//!   signatures (the authors' earlier work \[27\]);
//! * [`RecentPastPredictor`] — the application-transparent conventional
//!   baseline: predict from the mean of the 10 most recent requests.

use std::collections::VecDeque;

use crate::distance::{l1_distance, length_penalty};
use crate::series::MetricSeries;
use crate::stats::percentile;

/// One representative request stored in the bank.
#[derive(Debug, Clone, PartialEq)]
pub struct BankEntry {
    /// The signature: metric variation pattern over fixed buckets.
    pub series: MetricSeries,
    /// The request's total CPU consumption in cycles.
    pub cpu_cycles: f64,
}

/// A bank of representative request signatures.
#[derive(Debug, Clone, PartialEq)]
pub struct SignatureBank {
    entries: Vec<BankEntry>,
    median_cpu: f64,
    penalty: f64,
}

impl SignatureBank {
    /// Builds a bank; the prediction threshold is the median CPU usage of
    /// the entries (the paper sets the threshold to the workload median).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    pub fn new(entries: Vec<BankEntry>) -> SignatureBank {
        assert!(!entries.is_empty(), "bank needs at least one signature");
        let cpus: Vec<f64> = entries.iter().map(|e| e.cpu_cycles).collect();
        let median_cpu =
            percentile(&cpus, 0.5).unwrap_or_else(|| unreachable!("bank asserted nonempty above"));
        // Unequal-length penalty (§4.1): without it, signatures shorter
        // than the partial execution would win matches spuriously (fewer
        // compared elements = smaller L1 sum).
        let series: Vec<&[f64]> = entries.iter().map(|e| e.series.values()).collect();
        let penalty = length_penalty(&series, 100_000);
        SignatureBank {
            entries,
            median_cpu,
            penalty,
        }
    }

    /// The unequal-length penalty used during matching.
    pub fn penalty(&self) -> f64 {
        self.penalty
    }

    /// Number of stored signatures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no signatures are stored (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The median-CPU prediction threshold.
    pub fn median_cpu(&self) -> f64 {
        self.median_cpu
    }

    /// The stored entries.
    pub fn entries(&self) -> &[BankEntry] {
        &self.entries
    }

    /// Matches a partial variation pattern against the bank: each stored
    /// signature is truncated to the partial length and compared by L1
    /// distance (low cost, suitable online). Returns the closest entry.
    ///
    /// Returns `None` for an empty partial pattern (nothing observed yet).
    pub fn identify(&self, partial: &MetricSeries) -> Option<&BankEntry> {
        if partial.is_empty() {
            return None;
        }
        let n = partial.len();
        self.entries.iter().min_by(|a, b| {
            let da = l1_distance(partial.values(), a.series.prefix(n).values(), self.penalty);
            let db = l1_distance(partial.values(), b.series.prefix(n).values(), self.penalty);
            da.total_cmp(&db)
        })
    }

    /// The \[27\] baseline: match on the *average* metric value of the
    /// partial execution against each signature's prefix average.
    pub fn identify_by_average(&self, partial: &MetricSeries) -> Option<&BankEntry> {
        if partial.is_empty() {
            return None;
        }
        let n = partial.len();
        let avg = mean_of(partial.values());
        self.entries.iter().min_by(|a, b| {
            let da = (mean_of(a.series.prefix(n).values()) - avg).abs();
            let db = (mean_of(b.series.prefix(n).values()) - avg).abs();
            da.total_cmp(&db)
        })
    }

    /// Predicts whether the request's CPU usage will exceed the median,
    /// from its matched signature. `by_average` selects the \[27\] matching
    /// rule instead of the variation-pattern rule.
    pub fn predict_above_median(&self, partial: &MetricSeries, by_average: bool) -> Option<bool> {
        let entry = if by_average {
            self.identify_by_average(partial)?
        } else {
            self.identify(partial)?
        };
        Some(entry.cpu_cycles > self.median_cpu)
    }
}

fn mean_of(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// The conventional transparent baseline: "there is little other choice
/// but to use recent past workloads" — predicts every incoming request's
/// CPU usage as the mean of the last `window` completed requests.
#[derive(Debug, Clone)]
pub struct RecentPastPredictor {
    window: usize,
    recent: VecDeque<f64>,
}

impl RecentPastPredictor {
    /// Creates the predictor with the paper's 10-request window by default
    /// via [`Default`], or a custom window here.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> RecentPastPredictor {
        assert!(window > 0, "window must be nonzero");
        RecentPastPredictor {
            window,
            recent: VecDeque::new(),
        }
    }

    /// Records a completed request's CPU usage.
    pub fn record(&mut self, cpu_cycles: f64) {
        if self.recent.len() == self.window {
            self.recent.pop_front();
        }
        self.recent.push_back(cpu_cycles);
    }

    /// Predicted CPU usage for the next request; `None` before any
    /// completion.
    pub fn predict(&self) -> Option<f64> {
        if self.recent.is_empty() {
            return None;
        }
        Some(self.recent.iter().sum::<f64>() / self.recent.len() as f64)
    }

    /// Predicts above/below a threshold.
    pub fn predict_above(&self, threshold: f64) -> Option<bool> {
        self.predict().map(|p| p > threshold)
    }
}

impl Default for RecentPastPredictor {
    /// The paper's 10-request window.
    fn default() -> RecentPastPredictor {
        RecentPastPredictor::new(10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> MetricSeries {
        MetricSeries::from_values(values.to_vec(), 1000.0)
    }

    fn bank() -> SignatureBank {
        SignatureBank::new(vec![
            BankEntry {
                series: series(&[1.0, 1.0, 5.0, 5.0]),
                cpu_cycles: 100.0,
            },
            BankEntry {
                series: series(&[5.0, 5.0, 1.0, 1.0]),
                cpu_cycles: 300.0,
            },
            BankEntry {
                series: series(&[3.0, 3.0, 3.0, 3.0]),
                cpu_cycles: 200.0,
            },
        ])
    }

    #[test]
    fn identify_matches_closest_pattern() {
        let b = bank();
        let m = b.identify(&series(&[1.1, 0.9])).unwrap();
        assert_eq!(m.cpu_cycles, 100.0);
        let m = b.identify(&series(&[4.8, 5.2])).unwrap();
        assert_eq!(m.cpu_cycles, 300.0);
    }

    #[test]
    fn identify_uses_prefix_only() {
        // Entries 0 and 1 differ only after position 1 when the partial is
        // [3.0]: the average-flat entry should win.
        let b = bank();
        let m = b.identify(&series(&[3.0])).unwrap();
        assert_eq!(m.cpu_cycles, 200.0);
    }

    #[test]
    fn average_matching_ignores_shape() {
        // Three signatures whose 2-bucket prefixes all average 3.0: the
        // average rule cannot tell them apart (falls back to the first),
        // while the variation-pattern rule matches the true shape.
        let b = SignatureBank::new(vec![
            BankEntry {
                series: series(&[1.0, 5.0, 1.0, 5.0]),
                cpu_cycles: 100.0,
            },
            BankEntry {
                series: series(&[5.0, 1.0, 5.0, 1.0]),
                cpu_cycles: 300.0,
            },
            BankEntry {
                series: series(&[3.0, 3.0, 3.0, 3.0]),
                cpu_cycles: 200.0,
            },
        ]);
        let by_shape = b.identify(&series(&[5.0, 1.0])).unwrap();
        assert_eq!(by_shape.cpu_cycles, 300.0);
        let by_avg = b.identify_by_average(&series(&[5.0, 1.0])).unwrap();
        assert_eq!(by_avg.cpu_cycles, 100.0, "average rule cannot discriminate");
    }

    #[test]
    fn empty_partial_identifies_nothing() {
        let b = bank();
        assert!(b.identify(&series(&[])).is_none());
        assert!(b.identify_by_average(&series(&[])).is_none());
    }

    #[test]
    fn median_threshold_and_prediction() {
        let b = bank();
        assert_eq!(b.median_cpu(), 200.0);
        assert_eq!(
            b.predict_above_median(&series(&[5.0, 5.0, 1.0]), false),
            Some(true)
        );
        assert_eq!(
            b.predict_above_median(&series(&[1.0, 1.0, 5.0]), false),
            Some(false)
        );
    }

    #[test]
    fn longer_partial_cannot_hurt_an_exact_match() {
        let b = bank();
        for n in 1..=4 {
            let full = [1.0, 1.0, 5.0, 5.0];
            let m = b.identify(&series(&full[..n])).unwrap();
            assert_eq!(m.cpu_cycles, 100.0, "prefix length {n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one signature")]
    fn empty_bank_panics() {
        SignatureBank::new(vec![]);
    }

    #[test]
    fn recent_past_window_slides() {
        let mut p = RecentPastPredictor::new(3);
        assert_eq!(p.predict(), None);
        p.record(10.0);
        assert_eq!(p.predict(), Some(10.0));
        p.record(20.0);
        p.record(30.0);
        assert_eq!(p.predict(), Some(20.0));
        p.record(40.0); // evicts the 10
        assert_eq!(p.predict(), Some(30.0));
    }

    #[test]
    fn recent_past_threshold() {
        let mut p = RecentPastPredictor::default();
        assert_eq!(p.predict_above(5.0), None);
        p.record(10.0);
        assert_eq!(p.predict_above(5.0), Some(true));
        assert_eq!(p.predict_above(15.0), Some(false));
    }

    #[test]
    #[should_panic(expected = "window must be nonzero")]
    fn zero_window_panics() {
        RecentPastPredictor::new(0);
    }
}
#[cfg(test)]
mod length_bias_tests {
    use super::*;

    fn series(values: &[f64], bucket: f64) -> MetricSeries {
        MetricSeries::from_values(values.to_vec(), bucket)
    }

    #[test]
    fn long_partial_does_not_spuriously_match_short_signature() {
        // A short signature compared over fewer elements must not win by
        // default: the unequal-length penalty charges the missing tail.
        let b = SignatureBank::new(vec![
            BankEntry {
                series: series(&[2.0, 8.0], 1.0), // short request
                cpu_cycles: 10.0,
            },
            BankEntry {
                series: series(&[2.1, 8.2, 2.0, 8.0, 2.1, 8.1], 1.0), // long request
                cpu_cycles: 100.0,
            },
        ]);
        assert!(b.penalty() > 0.0);
        // The partial clearly continues past the short signature's end.
        let partial = series(&[2.0, 8.0, 2.0, 8.0, 2.0], 1.0);
        let m = b.identify(&partial).unwrap();
        assert_eq!(m.cpu_cycles, 100.0, "the long signature should match");
    }
}
