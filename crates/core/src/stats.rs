//! Statistics used throughout the paper's evaluation.
//!
//! * [`coefficient_of_variation`] — the duration-weighted CoV of Equation 1
//!   (§3.1), used to quantify captured behavior variations (Figure 3).
//! * [`weighted_rmse`] — the duration-weighted root mean square error of
//!   Equation 7 (§5.1), used to score online predictors (Figure 11).
//! * [`percentile`] / [`Histogram`] / [`Cdf`] — the distribution tooling
//!   behind Figures 1, 4, 12 and 13.

/// Duration-weighted coefficient of variation (Equation 1).
///
/// For periods of lengths `t_i` with metric values `x_i` and overall metric
/// `x̄ = Σ t_i x_i / Σ t_i`:
///
/// ```text
/// CoV = sqrt( Σ t_i (x_i - x̄)² / Σ t_i ) / x̄
/// ```
///
/// Returns `None` when there are no periods, total length is zero, or the
/// weighted mean is zero (CoV undefined).
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Examples
///
/// ```
/// use rbv_core::stats::coefficient_of_variation;
///
/// // Constant metric: zero variation.
/// let cov = coefficient_of_variation(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
/// assert!(cov.abs() < 1e-12);
/// ```
pub fn coefficient_of_variation(lengths: &[f64], values: &[f64]) -> Option<f64> {
    assert_eq!(lengths.len(), values.len(), "mismatched slice lengths");
    let total: f64 = lengths.iter().sum();
    if lengths.is_empty() || total <= 0.0 {
        return None;
    }
    let mean: f64 = lengths
        .iter()
        .zip(values)
        .map(|(&t, &x)| t * x)
        .sum::<f64>()
        / total;
    if mean == 0.0 {
        return None;
    }
    let var: f64 = lengths
        .iter()
        .zip(values)
        .map(|(&t, &x)| t * (x - mean) * (x - mean))
        .sum::<f64>()
        / total;
    Some(var.sqrt() / mean)
}

/// Duration-weighted root mean square error (Equation 7).
///
/// Returns `None` when inputs are empty or total length is zero.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn weighted_rmse(lengths: &[f64], actual: &[f64], predicted: &[f64]) -> Option<f64> {
    assert_eq!(lengths.len(), actual.len(), "mismatched slice lengths");
    assert_eq!(lengths.len(), predicted.len(), "mismatched slice lengths");
    let total: f64 = lengths.iter().sum();
    if lengths.is_empty() || total <= 0.0 {
        return None;
    }
    let sse: f64 = lengths
        .iter()
        .zip(actual.iter().zip(predicted))
        .map(|(&t, (&x, &p))| t * (x - p) * (x - p))
        .sum();
    Some((sse / total).sqrt())
}

/// The `q`-quantile (0 ≤ q ≤ 1) of `values` by linear interpolation between
/// order statistics. Returns `None` on an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Arithmetic mean; `None` on empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// A fixed-bin-width histogram over a closed range, matching the
/// probability-per-bin presentation of Figure 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    bin_width: f64,
    counts: Vec<u64>,
    total: u64,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(hi > lo, "empty histogram range");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            bin_width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            total: 0,
            below: 0,
            above: 0,
        }
    }

    /// Adds one observation. Out-of-range values are tallied separately
    /// (they count toward probabilities' denominator).
    pub fn add(&mut self, value: f64) {
        self.total += 1;
        if value < self.lo {
            self.below += 1;
            return;
        }
        let idx = ((value - self.lo) / self.bin_width) as usize;
        if idx >= self.counts.len() {
            self.above += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Adds every observation from an iterator.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.add(v);
        }
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Total observations (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterates `(bin_center, probability)` pairs.
    pub fn probabilities(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let denom = self.total.max(1) as f64;
        self.counts.iter().enumerate().map(move |(i, &c)| {
            (
                self.lo + (i as f64 + 0.5) * self.bin_width,
                c as f64 / denom,
            )
        })
    }

    /// The center of the most populated bin; `None` if empty.
    pub fn mode(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let (i, _) = self.counts.iter().enumerate().max_by_key(|&(_, &c)| c)?;
        Some(self.lo + (i as f64 + 0.5) * self.bin_width)
    }

    /// Counts local maxima with at least `min_prob` probability — used to
    /// verify the multimodal TPCC distribution of Figure 1.
    pub fn modes_above(&self, min_prob: f64) -> usize {
        let denom = self.total.max(1) as f64;
        let p: Vec<f64> = self.counts.iter().map(|&c| c as f64 / denom).collect();
        let mut n = 0;
        for i in 0..p.len() {
            let left = if i == 0 { 0.0 } else { p[i - 1] };
            let right = if i + 1 == p.len() { 0.0 } else { p[i + 1] };
            if p[i] >= min_prob && p[i] > left && p[i] >= right {
                n += 1;
            }
        }
        n
    }
}

/// An empirical CDF for the cumulative-probability plots of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds from samples.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Cdf {
        samples.sort_by(f64::total_cmp);
        Cdf { sorted: samples }
    }

    /// P(X ≤ x). Zero for an empty CDF.
    pub fn probability_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were supplied.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates the CDF at each point of `xs` (for plotting a series).
    pub fn evaluate(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.probability_at(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cov_of_constant_is_zero() {
        let cov = coefficient_of_variation(&[1.0, 5.0, 2.0], &[3.0, 3.0, 3.0]).unwrap();
        assert!(cov.abs() < 1e-12);
    }

    #[test]
    fn cov_weighted_by_duration() {
        // A brief excursion to 2.0 during a long run at 1.0 barely moves
        // the duration-weighted CoV, unlike the unweighted one.
        let weighted = coefficient_of_variation(&[1000.0, 1.0], &[1.0, 2.0]).unwrap();
        let unweighted = coefficient_of_variation(&[1.0, 1.0], &[1.0, 2.0]).unwrap();
        assert!(
            weighted < unweighted / 3.0,
            "weighted {weighted} vs unweighted {unweighted}"
        );
    }

    #[test]
    fn cov_matches_hand_computation() {
        // t = [1, 1], x = [1, 3]: mean 2, var = (1+1)/2 = 1, cov = 0.5.
        let cov = coefficient_of_variation(&[1.0, 1.0], &[1.0, 3.0]).unwrap();
        assert!((cov - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cov_scale_invariant() {
        let a = coefficient_of_variation(&[2.0, 3.0, 4.0], &[1.0, 2.0, 5.0]).unwrap();
        let b = coefficient_of_variation(&[2.0, 3.0, 4.0], &[10.0, 20.0, 50.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn cov_undefined_cases() {
        assert_eq!(coefficient_of_variation(&[], &[]), None);
        assert_eq!(coefficient_of_variation(&[0.0], &[1.0]), None);
        assert_eq!(coefficient_of_variation(&[1.0, 1.0], &[1.0, -1.0]), None); // mean 0
    }

    #[test]
    fn rmse_perfect_prediction_is_zero() {
        let r = weighted_rmse(&[1.0, 2.0], &[3.0, 4.0], &[3.0, 4.0]).unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn rmse_matches_hand_computation() {
        // t=[1,3], err=[2,0]: sqrt(4*1/4) = 1.
        let r = weighted_rmse(&[1.0, 3.0], &[5.0, 1.0], &[3.0, 1.0]).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_empty_is_none() {
        assert_eq!(weighted_rmse(&[], &[], &[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(4.0));
        assert_eq!(percentile(&v, 0.5), Some(2.5));
        assert!((percentile(&v, 0.9).unwrap() - 3.7).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_order_independent() {
        let a = percentile(&[5.0, 1.0, 3.0], 0.9);
        let b = percentile(&[1.0, 3.0, 5.0], 0.9);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn histogram_probabilities_sum_to_one_in_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend((0..100).map(|i| (i % 10) as f64 + 0.5));
        let sum: f64 = h.probabilities().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(h.total(), 100);
    }

    #[test]
    fn histogram_out_of_range_dilutes() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(0.25);
        h.add(5.0); // above range
        h.add(-1.0); // below range
        let sum: f64 = h.probabilities().map(|(_, p)| p).sum();
        assert!((sum - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_mode_found() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.extend([0.5, 1.5, 1.6, 1.7, 2.5]);
        assert!((h.mode().unwrap() - 1.5).abs() < 1e-12);
        assert_eq!(Histogram::new(0.0, 1.0, 1).mode(), None);
    }

    #[test]
    fn histogram_counts_multimodality() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        // Two clear modes at bins 1 and 7.
        h.extend(std::iter::repeat_n(1.5, 30));
        h.extend(std::iter::repeat_n(7.5, 30));
        h.extend([4.5, 4.6].iter().copied());
        assert_eq!(h.modes_above(0.1), 2);
    }

    #[test]
    #[should_panic(expected = "empty histogram range")]
    fn histogram_bad_range_panics() {
        Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn cdf_step_values() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.probability_at(0.5), 0.0);
        assert_eq!(c.probability_at(1.0), 0.25);
        assert_eq!(c.probability_at(2.5), 0.5);
        assert_eq!(c.probability_at(10.0), 1.0);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn cdf_empty() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.probability_at(1.0), 0.0);
    }

    #[test]
    fn cdf_evaluate_is_monotone() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 5.0, 4.0]);
        let ys = c.evaluate(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(ys.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*ys.last().unwrap(), 1.0);
    }
}
