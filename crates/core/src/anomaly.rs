//! Anomaly detection and analysis (§4.3).
//!
//! Anomalous requests deviate from a *reference* against expected
//! similarity. Two detectors from the paper:
//!
//! * [`centroid_outliers`] — within a group of requests sharing
//!   application-level semantics (same TPCH query, same WeBWorK problem),
//!   the requests farthest from the group centroid share the least common
//!   behavior and are flagged as suspected anomalies, with the centroid as
//!   their reference (Figure 8).
//! * [`multi_metric_pairs`] — searches for request pairs whose shared-
//!   resource *usage* patterns (L2 references per instruction) are very
//!   similar while their *performance* (CPI) diverges: the signature of
//!   adverse dynamic contention on cache-sharing multicores (Figure 9).

use crate::cluster::DistanceMatrix;

/// A request flagged by [`centroid_outliers`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outlier {
    /// Index of the suspected anomaly within the group.
    pub index: usize,
    /// Its distance to the group centroid.
    pub distance: f64,
}

/// Ranks a semantic group's members by distance from the group centroid
/// (most distant first) and returns the centroid as the reference.
///
/// Returns `(centroid_index, outliers)`; `outliers` excludes the centroid
/// itself. Returns `None` for groups smaller than 2.
pub fn centroid_outliers(dm: &DistanceMatrix) -> Option<(usize, Vec<Outlier>)> {
    if dm.len() < 2 {
        return None;
    }
    let all: Vec<usize> = (0..dm.len()).collect();
    let centroid = dm.medoid_of(&all)?;
    let mut outliers: Vec<Outlier> = all
        .into_iter()
        .filter(|&i| i != centroid)
        .map(|i| Outlier {
            index: i,
            distance: dm.get(i, centroid),
        })
        .collect();
    outliers.sort_by(|a, b| b.distance.total_cmp(&a.distance));
    Some((centroid, outliers))
}

/// An anomaly-reference candidate pair from [`multi_metric_pairs`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyPair {
    /// Index of the slower request (the suspected anomaly).
    pub anomaly: usize,
    /// Index of the faster request (the reference).
    pub reference: usize,
    /// Distance between the two requests' usage patterns (smaller =
    /// more similar instruction streams).
    pub usage_distance: f64,
    /// Divergence between the two requests' performance (larger = more
    /// anomalous).
    pub perf_divergence: f64,
}

impl AnomalyPair {
    /// Anomaly score: performance divergence per unit of usage distance.
    /// Higher = more suspicious (similar work, very different outcome).
    pub fn score(&self) -> f64 {
        self.perf_divergence / (self.usage_distance + 1e-12)
    }
}

/// Finds request pairs with similar usage patterns but divergent
/// performance.
///
/// `usage` is a pairwise distance matrix over L2-references-per-instruction
/// variation patterns (the paper uses DTW with asynchrony penalty here);
/// `perf` gives each request's performance level (e.g. request CPI — the
/// anomaly is the *higher*-CPI member of a pair). A pair qualifies when its
/// usage distance is at most `usage_threshold` and its performance gap at
/// least `perf_threshold`; qualifying pairs are returned sorted by
/// decreasing [`AnomalyPair::score`].
///
/// # Panics
///
/// Panics if `perf.len()` differs from the matrix size or thresholds are
/// negative.
pub fn multi_metric_pairs(
    usage: &DistanceMatrix,
    perf: &[f64],
    usage_threshold: f64,
    perf_threshold: f64,
) -> Vec<AnomalyPair> {
    assert_eq!(perf.len(), usage.len(), "one perf value per request");
    assert!(
        usage_threshold >= 0.0 && perf_threshold >= 0.0,
        "thresholds must be nonnegative"
    );
    let n = perf.len();
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let ud = usage.get(i, j);
            let pd = (perf[i] - perf[j]).abs();
            if ud <= usage_threshold && pd >= perf_threshold {
                let (anomaly, reference) = if perf[i] >= perf[j] { (i, j) } else { (j, i) };
                pairs.push(AnomalyPair {
                    anomaly,
                    reference,
                    usage_distance: ud,
                    perf_divergence: pd,
                });
            }
        }
    }
    pairs.sort_by(|a, b| b.score().total_cmp(&a.score()));
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_matrix(points: &[f64]) -> DistanceMatrix {
        DistanceMatrix::compute(points.len(), |i, j| (points[i] - points[j]).abs())
    }

    #[test]
    fn outlier_is_farthest_from_centroid() {
        // Tight group at ~1 plus one far point.
        let dm = line_matrix(&[1.0, 1.1, 0.9, 1.05, 9.0]);
        let (centroid, outliers) = centroid_outliers(&dm).unwrap();
        assert_ne!(centroid, 4, "the anomaly is not the centroid");
        assert_eq!(outliers[0].index, 4);
        assert!(outliers[0].distance > 7.0);
        // Ranked descending.
        assert!(outliers.windows(2).all(|w| w[0].distance >= w[1].distance));
        assert_eq!(outliers.len(), 4);
    }

    #[test]
    fn tiny_groups_are_rejected() {
        assert!(centroid_outliers(&line_matrix(&[1.0])).is_none());
        assert!(centroid_outliers(&line_matrix(&[])).is_none());
    }

    #[test]
    fn two_member_group_works() {
        let dm = line_matrix(&[1.0, 2.0]);
        let (centroid, outliers) = centroid_outliers(&dm).unwrap();
        assert_eq!(outliers.len(), 1);
        assert_ne!(outliers[0].index, centroid);
    }

    #[test]
    fn multi_metric_finds_contention_victims() {
        // Requests 0 and 1 do identical work (usage distance ~0) but 1 is
        // much slower; request 2 does different work.
        let usage = DistanceMatrix::compute(3, |i, j| match (i.min(j), i.max(j)) {
            (0, 1) => 0.05,
            _ => 5.0,
        });
        let perf = [1.0, 3.0, 1.0];
        let pairs = multi_metric_pairs(&usage, &perf, 0.5, 1.0);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].anomaly, 1);
        assert_eq!(pairs[0].reference, 0);
        assert!((pairs[0].perf_divergence - 2.0).abs() < 1e-12);
    }

    #[test]
    fn thresholds_filter_pairs() {
        let usage = DistanceMatrix::compute(2, |_, _| 0.1);
        let perf = [1.0, 1.2];
        // Perf gap below threshold: nothing.
        assert!(multi_metric_pairs(&usage, &perf, 1.0, 0.5).is_empty());
        // Usage distance above threshold: nothing.
        assert!(multi_metric_pairs(&usage, &perf, 0.01, 0.1).is_empty());
        // Both satisfied: one pair.
        assert_eq!(multi_metric_pairs(&usage, &perf, 1.0, 0.1).len(), 1);
    }

    #[test]
    fn pairs_sorted_by_score() {
        let usage = DistanceMatrix::compute(4, |i, j| match (i.min(j), i.max(j)) {
            (0, 1) => 0.01, // very similar
            (2, 3) => 0.4,  // loosely similar
            _ => 10.0,
        });
        let perf = [1.0, 2.0, 1.0, 2.0];
        let pairs = multi_metric_pairs(&usage, &perf, 1.0, 0.5);
        assert_eq!(pairs.len(), 2);
        assert!(pairs[0].score() >= pairs[1].score());
        assert_eq!((pairs[0].reference, pairs[0].anomaly), (0, 1));
    }

    #[test]
    fn anomaly_is_the_slower_member() {
        let usage = DistanceMatrix::compute(2, |_, _| 0.0);
        let pairs = multi_metric_pairs(&usage, &[5.0, 2.0], 1.0, 1.0);
        assert_eq!(pairs[0].anomaly, 0);
        assert_eq!(pairs[0].reference, 1);
    }

    #[test]
    #[should_panic(expected = "one perf value per request")]
    fn mismatched_perf_panics() {
        let usage = DistanceMatrix::compute(3, |_, _| 1.0);
        multi_metric_pairs(&usage, &[1.0], 1.0, 1.0);
    }
}

/// A contiguous stretch of the DTW-aligned comparison where the anomaly's
/// metric exceeds the reference's by at least a threshold — the "higher
/// CPIs in certain regions of execution" the paper reads off Figures 8/9.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivergentRegion {
    /// Bucket index range (inclusive) in the anomaly's series.
    pub anomaly_range: (usize, usize),
    /// Bucket index range (inclusive) in the reference's series.
    pub reference_range: (usize, usize),
    /// Mean metric gap (anomaly − reference) over the region.
    pub mean_gap: f64,
}

/// Aligns two metric series with DTW (asynchrony penalty `penalty`) and
/// returns the contiguous aligned regions where `anomaly − reference >=
/// threshold`, ordered by position.
///
/// # Panics
///
/// Panics if `penalty` is negative (propagated from the alignment).
pub fn divergent_regions(
    anomaly: &[f64],
    reference: &[f64],
    penalty: f64,
    threshold: f64,
) -> Vec<DivergentRegion> {
    let (_, path) = crate::distance::dtw_alignment(anomaly, reference, penalty);
    let mut regions = Vec::new();
    let mut current: Option<(usize, usize, usize, usize, f64, usize)> = None;
    for &(i, j) in &path {
        let gap = anomaly[i] - reference[j];
        if gap >= threshold {
            current = Some(match current {
                None => (i, i, j, j, gap, 1),
                Some((i0, _, j0, _, sum, n)) => (i0, i, j0, j, sum + gap, n + 1),
            });
        } else if let Some((i0, i1, j0, j1, sum, n)) = current.take() {
            regions.push(DivergentRegion {
                anomaly_range: (i0, i1),
                reference_range: (j0, j1),
                mean_gap: sum / n as f64,
            });
        }
    }
    if let Some((i0, i1, j0, j1, sum, n)) = current {
        regions.push(DivergentRegion {
            anomaly_range: (i0, i1),
            reference_range: (j0, j1),
            mean_gap: sum / n as f64,
        });
    }
    regions
}

#[cfg(test)]
mod region_tests {
    use super::*;

    #[test]
    fn finds_the_single_divergent_stretch() {
        let reference = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let anomaly = [1.0, 1.0, 3.0, 3.0, 1.0, 1.0];
        let regions = divergent_regions(&anomaly, &reference, 0.5, 1.0);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].anomaly_range, (2, 3));
        assert!((regions[0].mean_gap - 2.0).abs() < 1e-9);
    }

    #[test]
    fn no_regions_when_similar() {
        let a = [1.0, 2.0, 1.0];
        let b = [1.0, 2.0, 1.0];
        assert!(divergent_regions(&a, &b, 0.5, 0.5).is_empty());
    }

    #[test]
    fn multiple_regions_are_separated() {
        let reference = [1.0; 8];
        let anomaly = [3.0, 1.0, 1.0, 3.0, 3.0, 1.0, 1.0, 3.0];
        let regions = divergent_regions(&anomaly, &reference, 0.5, 1.0);
        assert!(regions.len() >= 2, "{regions:?}");
        assert!(regions
            .windows(2)
            .all(|w| w[0].anomaly_range.1 < w[1].anomaly_range.0));
    }

    #[test]
    fn alignment_tolerates_shift_before_divergence() {
        // The divergence is real even though the series are shifted: DTW
        // aligns the common prefix first.
        let reference = [1.0, 5.0, 1.0, 1.0, 1.0, 1.0];
        let anomaly = [1.0, 1.0, 5.0, 1.0, 4.0, 4.0];
        let regions = divergent_regions(&anomaly, &reference, 0.2, 1.5);
        assert_eq!(regions.len(), 1, "{regions:?}");
        assert!(regions[0].anomaly_range.0 >= 4);
    }
}
