//! Online request behavior predictors (§5.1).
//!
//! To drive adaptive scheduling, the OS must estimate the target metric
//! (L2 misses per instruction) for the *coming* execution period at each
//! sampling moment, using only information available online. The paper
//! evaluates (Figure 11):
//!
//! * [`LastValue`] — assume short-term stability: next = last observed;
//! * [`RunningAverage`] — assume no variation: next = cumulative
//!   duration-weighted average since the request began;
//! * [`Ewma`] — the classic exponentially weighted moving average of
//!   Equation 4 (`E_k = α E_{k-1} + (1-α) O_k`);
//! * [`VaEwma`] — the paper's variable-aging EWMA of Equation 5: samples
//!   of duration `t` age prior state by `α^(t/t̂)`
//!   (`E_k = α^(t_k/t̂) E_{k-1} + (1 − α^(t_k/t̂)) O_k`), correcting for
//!   the widely varying sample durations of context-switch and syscall
//!   sampling.
//!
//! All predictors share the [`Predictor`] trait; [`evaluate_rmse`] scores
//! a predictor over a request timeline with Equation 7.

use crate::stats::weighted_rmse;

/// An online metric predictor fed (value, duration) observations.
pub trait Predictor {
    /// Feeds one observed sample: metric `value` over a period of
    /// `duration` (any consistent unit; the vaEWMA unit length t̂ must use
    /// the same unit).
    fn observe(&mut self, value: f64, duration: f64);

    /// Predicted metric for the coming period; `None` before any
    /// observation.
    fn predict(&self) -> Option<f64>;

    /// Forgets all state (new request).
    fn reset(&mut self);
}

/// Predicts the next period's metric as the last observed value.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LastValue {
    last: Option<f64>,
}

impl LastValue {
    /// Creates the predictor.
    pub fn new() -> LastValue {
        LastValue::default()
    }
}

impl Predictor for LastValue {
    fn observe(&mut self, value: f64, _duration: f64) {
        self.last = Some(value);
    }

    fn predict(&self) -> Option<f64> {
        self.last
    }

    fn reset(&mut self) {
        self.last = None;
    }
}

/// Predicts the cumulative duration-weighted average from the request's
/// beginning ("assumes the request behavior does not vary").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningAverage {
    weighted_sum: f64,
    total_duration: f64,
}

impl RunningAverage {
    /// Creates the predictor.
    pub fn new() -> RunningAverage {
        RunningAverage::default()
    }
}

impl Predictor for RunningAverage {
    fn observe(&mut self, value: f64, duration: f64) {
        self.weighted_sum += value * duration;
        self.total_duration += duration;
    }

    fn predict(&self) -> Option<f64> {
        (self.total_duration > 0.0).then(|| self.weighted_sum / self.total_duration)
    }

    fn reset(&mut self) {
        *self = RunningAverage::default();
    }
}

/// The basic EWMA filter of Equation 4 (fixed aging per sample).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    state: Option<f64>,
}

impl Ewma {
    /// Creates the filter with gain `alpha` (0 = track instantly,
    /// 1 = never update).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn new(alpha: f64) -> Ewma {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        Ewma { alpha, state: None }
    }

    /// The gain parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Predictor for Ewma {
    fn observe(&mut self, value: f64, _duration: f64) {
        self.state = Some(match self.state {
            None => value,
            Some(e) => self.alpha * e + (1.0 - self.alpha) * value,
        });
    }

    fn predict(&self) -> Option<f64> {
        self.state
    }

    fn reset(&mut self) {
        self.state = None;
    }
}

/// The paper's variable-aging EWMA of Equation 5.
///
/// A sample spanning `t` time units ages the previous estimate by
/// `α^(t/t̂)`: long samples (e.g. a full scheduling quantum between context
/// switches) displace more history than the 1-unit samples of periodic
/// interrupts, which makes the filter consistent across the mixed sample
/// durations produced by syscall-triggered sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VaEwma {
    alpha: f64,
    unit: f64,
    state: Option<f64>,
}

impl VaEwma {
    /// Creates the filter with gain `alpha` and unit observation length
    /// `unit` (t̂; the paper uses 1 ms).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]` or `unit` is not positive.
    pub fn new(alpha: f64, unit: f64) -> VaEwma {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        assert!(unit > 0.0, "unit length must be positive");
        VaEwma {
            alpha,
            unit,
            state: None,
        }
    }

    /// The gain parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Predictor for VaEwma {
    fn observe(&mut self, value: f64, duration: f64) {
        let aging = self.alpha.powf((duration / self.unit).max(0.0));
        self.state = Some(match self.state {
            None => value,
            Some(e) => aging * e + (1.0 - aging) * value,
        });
    }

    fn predict(&self) -> Option<f64> {
        self.state
    }

    fn reset(&mut self) {
        self.state = None;
    }
}

/// Replays a request's sample sequence through `predictor` and scores it
/// with the duration-weighted RMSE of Equation 7.
///
/// At each period the predictor first predicts (from past observations
/// only), then observes the actual value. Periods before the first
/// prediction are excluded. Returns `None` if fewer than two periods.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn evaluate_rmse(
    predictor: &mut dyn Predictor,
    durations: &[f64],
    values: &[f64],
) -> Option<f64> {
    assert_eq!(durations.len(), values.len(), "mismatched slice lengths");
    predictor.reset();
    let mut ts = Vec::new();
    let mut actual = Vec::new();
    let mut predicted = Vec::new();
    for (&t, &x) in durations.iter().zip(values) {
        if let Some(p) = predictor.predict() {
            ts.push(t);
            actual.push(x);
            predicted.push(p);
        }
        predictor.observe(x, t);
    }
    weighted_rmse(&ts, &actual, &predicted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_tracks() {
        let mut p = LastValue::new();
        assert_eq!(p.predict(), None);
        p.observe(3.0, 1.0);
        assert_eq!(p.predict(), Some(3.0));
        p.observe(5.0, 10.0);
        assert_eq!(p.predict(), Some(5.0));
        p.reset();
        assert_eq!(p.predict(), None);
    }

    #[test]
    fn running_average_weights_by_duration() {
        let mut p = RunningAverage::new();
        p.observe(1.0, 3.0);
        p.observe(5.0, 1.0);
        assert_eq!(p.predict(), Some(2.0)); // (3 + 5) / 4
    }

    #[test]
    fn ewma_recurrence_matches_equation_4() {
        let mut p = Ewma::new(0.6);
        p.observe(10.0, 1.0);
        assert_eq!(p.predict(), Some(10.0));
        p.observe(0.0, 1.0);
        assert!((p.predict().unwrap() - 6.0).abs() < 1e-12);
        p.observe(0.0, 1.0);
        assert!((p.predict().unwrap() - 3.6).abs() < 1e-12);
    }

    #[test]
    fn ewma_extremes() {
        let mut frozen = Ewma::new(1.0);
        frozen.observe(2.0, 1.0);
        frozen.observe(100.0, 1.0);
        assert_eq!(frozen.predict(), Some(2.0));

        let mut instant = Ewma::new(0.0);
        instant.observe(2.0, 1.0);
        instant.observe(100.0, 1.0);
        assert_eq!(instant.predict(), Some(100.0));
    }

    #[test]
    fn vaewma_equals_ewma_on_unit_samples() {
        // Equation 5 reduces to Equation 4 when every t_k == t̂.
        let mut va = VaEwma::new(0.7, 1.0);
        let mut basic = Ewma::new(0.7);
        for (i, v) in [3.0, 9.0, 1.0, 4.0, 8.0].iter().enumerate() {
            va.observe(*v, 1.0);
            basic.observe(*v, 1.0);
            let (a, b) = (va.predict().unwrap(), basic.predict().unwrap());
            assert!((a - b).abs() < 1e-12, "step {i}: {a} vs {b}");
        }
    }

    #[test]
    fn vaewma_long_samples_age_more() {
        // After the same new observation, a longer duration pulls the
        // estimate further from history.
        let mut short = VaEwma::new(0.6, 1.0);
        let mut long = VaEwma::new(0.6, 1.0);
        short.observe(10.0, 1.0);
        long.observe(10.0, 1.0);
        short.observe(0.0, 1.0);
        long.observe(0.0, 5.0);
        assert!(long.predict().unwrap() < short.predict().unwrap());
        // alpha^5 * 10 vs alpha^1 * 10.
        assert!((long.predict().unwrap() - 10.0 * 0.6f64.powi(5)).abs() < 1e-12);
    }

    #[test]
    fn vaewma_split_sample_consistency() {
        // Observing the same value for duration 2 equals observing it
        // twice for duration 1 (the aging law is multiplicative).
        let mut once = VaEwma::new(0.5, 1.0);
        let mut twice = VaEwma::new(0.5, 1.0);
        once.observe(8.0, 1.0);
        twice.observe(8.0, 1.0);
        once.observe(2.0, 2.0);
        twice.observe(2.0, 1.0);
        twice.observe(2.0, 1.0);
        assert!((once.predict().unwrap() - twice.predict().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn evaluate_rmse_on_constant_series() {
        // Any sane predictor is perfect on a constant series.
        let d = vec![1.0; 10];
        let v = vec![4.2; 10];
        for p in [
            &mut LastValue::new() as &mut dyn Predictor,
            &mut RunningAverage::new(),
            &mut Ewma::new(0.5),
            &mut VaEwma::new(0.5, 1.0),
        ] {
            assert_eq!(evaluate_rmse(p, &d, &v), Some(0.0));
        }
    }

    #[test]
    fn evaluate_rmse_last_value_on_alternating_series() {
        // Alternating 0/1: last-value is always wrong by 1.
        let d = vec![1.0; 8];
        let v: Vec<f64> = (0..8).map(|i| (i % 2) as f64).collect();
        let r = evaluate_rmse(&mut LastValue::new(), &d, &v).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        // The running average does better (always predicts ~0.5).
        let ra = evaluate_rmse(&mut RunningAverage::new(), &d, &v).unwrap();
        assert!(ra < r);
    }

    #[test]
    fn evaluate_rmse_smooth_drift_favors_adaptive_filters() {
        // Slowly drifting signal with noise: EWMA beats the global average.
        let n = 200;
        let d = vec![1.0; n];
        let v: Vec<f64> = (0..n)
            .map(|i| i as f64 * 0.05 + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let ewma = evaluate_rmse(&mut Ewma::new(0.6), &d, &v).unwrap();
        let avg = evaluate_rmse(&mut RunningAverage::new(), &d, &v).unwrap();
        assert!(ewma < avg, "ewma {ewma} vs avg {avg}");
    }

    #[test]
    fn evaluate_rmse_too_short_is_none() {
        assert_eq!(evaluate_rmse(&mut LastValue::new(), &[], &[]), None);
        assert_eq!(evaluate_rmse(&mut LastValue::new(), &[1.0], &[2.0]), None);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn bad_alpha_panics() {
        Ewma::new(1.5);
    }

    #[test]
    #[should_panic(expected = "unit length must be positive")]
    fn bad_unit_panics() {
        VaEwma::new(0.5, 0.0);
    }
}
