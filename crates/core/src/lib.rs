//! Variation-driven request modeling: the primary contribution of
//! *Request Behavior Variations* (Kai Shen, ASPLOS 2010).
//!
//! A server request's hardware behavior (CPI, L2 references per
//! instruction, L2 misses per reference) fluctuates over its execution.
//! This crate turns those fluctuations into models:
//!
//! * [`series`] — per-request counter [`Timeline`]s and fixed-bucket
//!   [`MetricSeries`] signatures;
//! * [`stats`] — the paper's Equation 1 (weighted coefficient of
//!   variation) and Equation 7 (weighted RMSE), plus histograms and CDFs;
//! * [`distance`] — request differencing (§4.1): L1 with length penalty,
//!   dynamic time warping, DTW with the paper's asynchrony penalty,
//!   banded DTW, Levenshtein over syscall sequences, plus exact
//!   early-abandoning fast paths for running-best searches;
//! * [`cluster`] — k-medoids classification and the Figure 7 quality
//!   metric (§4.2), with deterministic parallel variants
//!   ([`cluster::DistanceMatrix::compute_par`], [`cluster::k_medoids_par`])
//!   driven by an [`rbv_par::Pool`] — bit-identical to the serial paths
//!   at any thread count;
//! * [`anomaly`] — centroid-outlier and multi-metric anomaly detection
//!   (§4.3);
//! * [`signature`] — online request signature identification and CPU
//!   usage prediction (§4.4);
//! * [`predict`] — online behavior predictors including the paper's
//!   variable-aging EWMA (§5.1).
//!
//! # Example: differencing two requests' CPI patterns
//!
//! ```
//! use rbv_core::distance::{dtw_distance_with_penalty, l1_distance, length_penalty};
//!
//! // Two similar requests whose executions drift apart (the Figure 6
//! // scenario): DTW with asynchrony penalty absorbs the shift cheaply,
//! // the L1 distance overestimates it.
//! let a = [1.0, 1.0, 6.0, 1.0, 6.0, 1.0, 1.0, 1.0];
//! let b = [1.0, 1.0, 1.0, 6.0, 1.0, 6.0, 1.0, 1.0];
//! let p = length_penalty(&[&a, &b], 10_000);
//! assert!(dtw_distance_with_penalty(&a, &b, p) < l1_distance(&a, &b, p));
//! ```
//!
//! [`Timeline`]: series::Timeline
//! [`MetricSeries`]: series::MetricSeries

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod anomaly;
pub mod cluster;
pub mod distance;
pub mod predict;
pub mod series;
pub mod signature;
pub mod stats;

pub use cluster::{k_medoids, k_medoids_par, Clustering, DistanceMatrix};
pub use distance::{
    dtw_distance_with_penalty_pruned, nearest_series, nearest_series_with_stats, PruneStats,
};
pub use predict::{Ewma, LastValue, Predictor, RunningAverage, VaEwma};
pub use series::{Metric, MetricSeries, SamplePeriod, Timeline};
pub use signature::{BankEntry, RecentPastPredictor, SignatureBank};
