//! Request differencing measures (§4.1).
//!
//! A foundation of the paper's request modeling is quantifying the
//! difference between two requests' time-series behaviors. This module
//! implements every measure the paper compares in Figure 7:
//!
//! * [`l1_distance`] — Equation 2: element-wise L1 over the common prefix
//!   plus a per-element penalty `p` for the length difference, with `p`
//!   set to a peak-level metric difference ([`length_penalty`]);
//! * [`dtw_distance`] — classic dynamic time warping (Equation 3
//!   minimized over warp paths), which tolerates time shifting but can
//!   *under*-estimate differences through free asynchronous steps;
//! * [`dtw_distance_with_penalty`] — the paper's enhancement: each
//!   asynchronous warp step pays the same penalty `p`, fixing the
//!   under-estimation (the single most effective measure in Figure 7);
//! * [`dtw_banded`] — a Sakoe–Chiba band-constrained variant (ablation:
//!   trades warp freedom for `O(n·band)` cost);
//! * [`levenshtein`] — string edit distance over system call sequences,
//!   the software-metric-only Magpie-style baseline;
//! * [`average_metric_distance`] — the average-value signature baseline
//!   of the authors' earlier work \[27\].
//!
//! §4.2 flags the full-DTW cost as the obstacle to online use. For
//! running-best searches (nearest signature, nearest medoid) this module
//! adds exact fast paths in the classic LB_Keogh tradition:
//!
//! * [`dtw_distance_with_penalty_pruned`] — DTW that gives up early once
//!   the distance provably exceeds a cutoff: an envelope lower-bound
//!   prefilter, then the full DP with per-column early abandoning.
//!   Whenever the bound cannot prune, the full DP runs unchanged, so a
//!   returned distance is bit-identical to [`dtw_distance_with_penalty`];
//! * [`nearest_series`] — running-best nearest-neighbor scan over
//!   candidate series, property-tested equal to the naive full scan;
//! * [`nearest_series_with_stats`] — the same scan, also reporting which
//!   stage of the prune cascade (LB_Kim → length penalty → LB_Keogh →
//!   per-column abandon) settled each candidate as [`PruneStats`], the
//!   observability behind the ledger's `kernel.prune.*` counters.

/// L1 distance with unequal-length penalty (Equation 2).
///
/// ```text
/// d = Σ_{i<min(m,n)} |x_i − y_i|  +  |m − n| · p
/// ```
///
/// # Panics
///
/// Panics if `penalty` is negative.
///
/// # Examples
///
/// ```
/// use rbv_core::distance::l1_distance;
///
/// let d = l1_distance(&[1.0, 2.0], &[1.5, 2.0, 9.0], 10.0);
/// assert!((d - (0.5 + 10.0)).abs() < 1e-12);
/// ```
pub fn l1_distance(x: &[f64], y: &[f64], penalty: f64) -> f64 {
    assert!(penalty >= 0.0, "penalty must be nonnegative");
    let common: f64 = x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum();
    common + (x.len().abs_diff(y.len())) as f64 * penalty
}

/// Classic dynamic time warping distance (no asynchrony penalty).
///
/// The minimum over valid warp paths of the summed point-wise metric
/// differences (Equation 3), allowing free asynchronous steps. `O(m·n)`
/// time, `O(min(m,n))` space.
///
/// Empty-series convention: if exactly one series is empty the distance is
/// `+∞` is unhelpful for clustering, so we mirror the L1 convention and
/// charge nothing here (callers use the penalty variant in practice);
/// both empty gives 0.
pub fn dtw_distance(x: &[f64], y: &[f64]) -> f64 {
    dtw_distance_with_penalty(x, y, 0.0)
}

/// Dynamic time warping with a per-asynchronous-step penalty (§4.1).
///
/// Identical to [`dtw_distance`] except every asynchronous warp step (one
/// pointer advances while the other stays) adds `penalty`, preventing
/// cost-free time shifting from under-estimating request differences. The
/// paper sets `penalty` to the same value as the L1 unequal-length penalty.
///
/// # Panics
///
/// Panics if `penalty` is negative.
///
/// # Examples
///
/// ```
/// use rbv_core::distance::{dtw_distance, dtw_distance_with_penalty};
///
/// // Identical peaks shifted by one position: free DTW aligns them for
/// // nothing, the penalty charges the two asynchronous steps.
/// let x = [1.0, 1.0, 9.0, 1.0, 1.0, 1.0];
/// let y = [1.0, 1.0, 1.0, 9.0, 1.0, 1.0];
/// assert_eq!(dtw_distance(&x, &y), 0.0);
/// let d = dtw_distance_with_penalty(&x, &y, 2.0);
/// assert!((d - 4.0).abs() < 1e-12);
/// ```
pub fn dtw_distance_with_penalty(x: &[f64], y: &[f64], penalty: f64) -> f64 {
    assert!(penalty >= 0.0, "penalty must be nonnegative");
    if x.is_empty() || y.is_empty() {
        return (x.len() + y.len()) as f64 * penalty;
    }
    // Keep the shorter series as the row for O(min) space.
    let (rows, cols) = if x.len() <= y.len() { (x, y) } else { (y, x) };
    let m = rows.len();

    // prev[i] = D[j-1][i], cur[i] = D[j][i]; D over (col index j, row i).
    let mut prev = vec![f64::INFINITY; m];
    let mut cur = vec![f64::INFINITY; m];

    for (j, &cv) in cols.iter().enumerate() {
        std::mem::swap(&mut prev, &mut cur);
        for (i, &rv) in rows.iter().enumerate() {
            let local = (cv - rv).abs();
            let best = if i == 0 && j == 0 {
                0.0
            } else {
                let diag = if i > 0 && j > 0 {
                    prev[i - 1]
                } else {
                    f64::INFINITY
                };
                let up = if i > 0 {
                    cur[i - 1] + penalty
                } else {
                    f64::INFINITY
                };
                let left = if j > 0 {
                    prev[i] + penalty
                } else {
                    f64::INFINITY
                };
                diag.min(up).min(left)
            };
            cur[i] = best + local;
        }
    }
    cur[m - 1]
}

/// Sakoe–Chiba band-constrained DTW with asynchrony penalty.
///
/// Warp paths may deviate at most `band` elements from the (rescaled)
/// diagonal. With `band >= max(m, n)` this equals the unconstrained
/// distance; smaller bands are cheaper and forbid extreme warps. Returns
/// the unconstrained convention for empty inputs.
///
/// # Panics
///
/// Panics if `penalty` is negative or `band` is zero.
///
/// # Examples
///
/// ```
/// use rbv_core::distance::{dtw_banded, dtw_distance_with_penalty};
///
/// let x = [1.0, 5.0, 2.0, 8.0, 3.0, 3.0];
/// let y = [2.0, 4.0, 4.0, 7.0, 2.0];
/// // A band at least as wide as the series equals unconstrained DTW;
/// // a narrow band can only forbid warps, never undercut it.
/// let full = dtw_distance_with_penalty(&x, &y, 1.0);
/// assert_eq!(dtw_banded(&x, &y, 1.0, 16), full);
/// assert!(dtw_banded(&x, &y, 1.0, 1) >= full);
/// ```
pub fn dtw_banded(x: &[f64], y: &[f64], penalty: f64, band: usize) -> f64 {
    assert!(penalty >= 0.0, "penalty must be nonnegative");
    assert!(band > 0, "band must be at least 1");
    if x.is_empty() || y.is_empty() {
        return (x.len() + y.len()) as f64 * penalty;
    }
    let (rows, cols) = if x.len() <= y.len() { (x, y) } else { (y, x) };
    let m = rows.len();
    let n = cols.len();
    // Rescaled diagonal: row index ~ j * m / n.
    let mut prev = vec![f64::INFINITY; m];
    let mut cur = vec![f64::INFINITY; m];

    for (j, &cv) in cols.iter().enumerate() {
        std::mem::swap(&mut prev, &mut cur);
        cur.fill(f64::INFINITY);
        let center = j * m / n;
        let lo = center.saturating_sub(band);
        let hi = (center + band).min(m - 1);
        for i in lo..=hi {
            let rv = rows[i];
            let local = (cv - rv).abs();
            let best = if i == 0 && j == 0 {
                0.0
            } else {
                let diag = if i > 0 && j > 0 {
                    prev[i - 1]
                } else {
                    f64::INFINITY
                };
                let up = if i > 0 {
                    cur[i - 1] + penalty
                } else {
                    f64::INFINITY
                };
                let left = if j > 0 {
                    prev[i] + penalty
                } else {
                    f64::INFINITY
                };
                diag.min(up).min(left)
            };
            cur[i] = best + local;
        }
    }
    cur[m - 1]
}

/// Levenshtein string edit distance over token sequences: the minimum
/// number of insertions, deletions, or substitutions transforming one
/// sequence into the other. Used on per-request system call name sequences
/// as the Magpie-style software-only baseline (§4.1).
pub fn levenshtein<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (j, lv) in long.iter().enumerate() {
        cur[0] = j + 1;
        for (i, sv) in short.iter().enumerate() {
            let sub = prev[i] + usize::from(sv != lv);
            cur[i + 1] = sub.min(prev[i + 1] + 1).min(cur[i] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// The average-metric-value baseline \[27\]: `|x̄ − ȳ|`.
pub fn average_metric_distance(x_avg: f64, y_avg: f64) -> f64 {
    (x_avg - y_avg).abs()
}

/// Computes the unequal-length / asynchrony penalty `p` of §4.1: "the
/// 99-percentile value of the distribution of metric differences at two
/// arbitrary points of application execution".
///
/// Scans deterministic strided point pairs across all provided series
/// (≈ `target_pairs` of them) and returns the 99th percentile of their
/// absolute differences. Returns 0 when fewer than two points exist.
pub fn length_penalty(series: &[&[f64]], target_pairs: usize) -> f64 {
    let all: Vec<f64> = series.iter().flat_map(|s| s.iter().copied()).collect();
    let n = all.len();
    if n < 2 {
        return 0.0;
    }
    let target = target_pairs.max(16);
    // Deterministic quasi-random pairing: golden-ratio stride walk.
    let mut diffs = Vec::with_capacity(target);
    let mut a = 0usize;
    let mut b = n / 2;
    const STRIDE_A: usize = 7_919; // primes avoid short cycles
    const STRIDE_B: usize = 104_729;
    for _ in 0..target {
        a = (a + STRIDE_A) % n;
        b = (b + STRIDE_B) % n;
        if a != b {
            diffs.push((all[a] - all[b]).abs());
        }
    }
    crate::stats::percentile(&diffs, 0.99).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_equal_lengths() {
        let d = l1_distance(&[1.0, 2.0, 3.0], &[2.0, 2.0, 1.0], 5.0);
        assert!((d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn l1_length_penalty_applied() {
        let d = l1_distance(&[1.0], &[1.0, 1.0, 1.0], 2.5);
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn l1_identity_and_symmetry() {
        let x = [1.0, 4.0, 2.0];
        let y = [2.0, 1.0];
        assert_eq!(l1_distance(&x, &x, 3.0), 0.0);
        assert_eq!(l1_distance(&x, &y, 3.0), l1_distance(&y, &x, 3.0));
    }

    #[test]
    fn dtw_identity() {
        let x = [1.0, 2.0, 3.0, 2.0];
        assert_eq!(dtw_distance(&x, &x), 0.0);
        assert_eq!(dtw_distance_with_penalty(&x, &x, 5.0), 0.0);
    }

    #[test]
    fn dtw_symmetry() {
        let x = [1.0, 5.0, 2.0, 8.0];
        let y = [2.0, 4.0, 4.0];
        assert_eq!(dtw_distance(&x, &y), dtw_distance(&y, &x));
        assert_eq!(
            dtw_distance_with_penalty(&x, &y, 1.5),
            dtw_distance_with_penalty(&y, &x, 1.5)
        );
    }

    #[test]
    fn dtw_absorbs_time_shift_that_l1_overestimates() {
        // The Figure 6 scenario: identical peaks, shifted by one position.
        let x = [1.0, 1.0, 9.0, 1.0, 1.0, 1.0];
        let y = [1.0, 1.0, 1.0, 9.0, 1.0, 1.0];
        let l1 = l1_distance(&x, &y, 10.0);
        let dtw = dtw_distance(&x, &y);
        assert!((l1 - 16.0).abs() < 1e-12, "L1 counts the peak twice");
        assert!(dtw < 1e-12, "DTW aligns the peaks for free");
    }

    #[test]
    fn asynchrony_penalty_charges_shifts() {
        let x = [1.0, 1.0, 9.0, 1.0, 1.0, 1.0];
        let y = [1.0, 1.0, 1.0, 9.0, 1.0, 1.0];
        let p = 2.0;
        let d = dtw_distance_with_penalty(&x, &y, p);
        // The shift needs at least two asynchronous steps (one each way).
        assert!(d >= 2.0 * p - 1e-9, "d = {d}");
        assert!(d < l1_distance(&x, &y, p), "still cheaper than L1's 16");
    }

    #[test]
    fn plain_dtw_underestimates_shifted_spiky_series() {
        // Free warping absorbs a whole-series phase shift for nothing —
        // the paper's motivation for the penalty.
        let x = [1.0, 9.0, 1.0, 9.0, 1.0, 9.0, 1.0, 9.0];
        let y = [9.0, 1.0, 9.0, 1.0, 9.0, 1.0, 9.0, 1.0];
        let free = dtw_distance(&x, &y);
        let charged = dtw_distance_with_penalty(&x, &y, 3.0);
        // Free DTW pays only the two boundary cells (8 each).
        assert!((free - 16.0).abs() < 1e-12, "free {free}");
        // The penalty charges the two asynchronous shift steps.
        assert!(charged >= free + 2.0 * 3.0 - 1e-9, "charged {charged}");
        // Both stay below the fully synchronized cost of 64.
        assert!(charged < l1_distance(&x, &y, 3.0));
    }

    #[test]
    fn dtw_with_penalty_at_most_l1_for_equal_lengths() {
        // The synchronized path IS a warp path, so the DTW minimum can't
        // exceed the L1 sum on equal-length series.
        let x = [1.0, 3.0, 2.0, 5.0, 4.0];
        let y = [2.0, 2.0, 4.0, 4.0, 4.0];
        let l1 = l1_distance(&x, &y, 7.0);
        let d = dtw_distance_with_penalty(&x, &y, 7.0);
        assert!(d <= l1 + 1e-12);
    }

    #[test]
    fn dtw_unequal_lengths() {
        let d = dtw_distance_with_penalty(&[1.0], &[1.0, 1.0, 1.0], 2.0);
        // Two asynchronous steps at penalty 2 each, zero value difference.
        assert!((d - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dtw_empty_conventions() {
        assert_eq!(dtw_distance_with_penalty(&[], &[], 3.0), 0.0);
        assert_eq!(dtw_distance_with_penalty(&[], &[1.0, 2.0], 3.0), 6.0);
        assert_eq!(dtw_distance(&[], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn banded_matches_full_with_wide_band() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0, 3.0];
        let y = [2.0, 4.0, 4.0, 7.0, 2.0];
        let full = dtw_distance_with_penalty(&x, &y, 1.0);
        let banded = dtw_banded(&x, &y, 1.0, 16);
        assert!((full - banded).abs() < 1e-12);
    }

    #[test]
    fn narrow_band_never_below_full() {
        let x = [1.0, 1.0, 9.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let y = [1.0, 1.0, 1.0, 1.0, 1.0, 9.0, 1.0, 1.0];
        let full = dtw_distance_with_penalty(&x, &y, 0.5);
        let narrow = dtw_banded(&x, &y, 0.5, 1);
        assert!(narrow >= full - 1e-12);
        // Band 1 cannot reach the 3-position shift: it must pay value cost.
        assert!(narrow > full + 1.0, "narrow {narrow} vs full {full}");
    }

    #[test]
    fn levenshtein_classic_cases() {
        assert_eq!(levenshtein(&b"kitten"[..], &b"sitting"[..]), 3);
        assert_eq!(levenshtein(&b"abc"[..], &b"abc"[..]), 0);
        assert_eq!(levenshtein(&b""[..], &b"abc"[..]), 3);
        assert_eq!(levenshtein(&b"abc"[..], &b""[..]), 3);
        assert_eq!(levenshtein::<u8>(&[], &[]), 0);
    }

    #[test]
    fn levenshtein_symmetry_and_triangle() {
        let a = [1u16, 2, 3, 4];
        let b = [2u16, 3, 4, 4, 5];
        let c = [1u16, 1, 1];
        let dab = levenshtein(&a, &b);
        assert_eq!(dab, levenshtein(&b, &a));
        assert!(levenshtein(&a, &c) <= dab + levenshtein(&b, &c));
    }

    #[test]
    fn average_metric_distance_is_abs_diff() {
        assert_eq!(average_metric_distance(2.0, 3.5), 1.5);
        assert_eq!(average_metric_distance(3.5, 2.0), 1.5);
    }

    #[test]
    fn length_penalty_is_peak_level() {
        // Values mostly near 1 with rare 10s: p99 of |diff| should be
        // well above the typical diff and near the extreme.
        let mut vals = vec![1.0; 990];
        vals.extend(vec![10.0; 10]);
        let p = length_penalty(&[&vals], 100_000);
        assert!(p > 4.0, "penalty {p} should reflect the peak diffs");
        assert!(p <= 9.0 + 1e-9);
    }

    #[test]
    fn length_penalty_degenerate_inputs() {
        assert_eq!(length_penalty(&[], 1000), 0.0);
        assert_eq!(length_penalty(&[&[1.0]], 1000), 0.0);
        // Constant values: all diffs zero.
        let c = vec![2.0; 100];
        assert_eq!(length_penalty(&[&c], 1000), 0.0);
    }

    #[test]
    #[should_panic(expected = "penalty must be nonnegative")]
    fn negative_penalty_panics() {
        l1_distance(&[1.0], &[1.0], -1.0);
    }
}

/// Dynamic time warping with full path recovery: returns the distance of
/// the optimal warp path (identical to [`dtw_distance_with_penalty`]) plus
/// the path itself as `(x_index, y_index)` pointer positions, starting at
/// `(0, 0)` and ending at `(m-1, n-1)`.
///
/// Uses `O(m·n)` memory for backtracking — fine for the few-hundred-bucket
/// series request signatures use; prefer the path-free variant inside
/// clustering loops.
///
/// Returns distance 0 and an empty path when either series is empty
/// (matching the distance-only convention only when both are empty; a
/// single empty side yields the length-penalty distance and no path).
///
/// # Panics
///
/// Panics if `penalty` is negative.
pub fn dtw_alignment(x: &[f64], y: &[f64], penalty: f64) -> (f64, Vec<(usize, usize)>) {
    assert!(penalty >= 0.0, "penalty must be nonnegative");
    if x.is_empty() || y.is_empty() {
        return ((x.len() + y.len()) as f64 * penalty, Vec::new());
    }
    let (m, n) = (x.len(), y.len());
    let idx = |i: usize, j: usize| i * n + j;
    let mut cost = vec![f64::INFINITY; m * n];
    // 0 = start, 1 = diagonal, 2 = from (i-1, j), 3 = from (i, j-1).
    let mut from = vec![0u8; m * n];
    for i in 0..m {
        for j in 0..n {
            let local = (x[i] - y[j]).abs();
            let (best, step) = if i == 0 && j == 0 {
                (0.0, 0u8)
            } else {
                let diag = if i > 0 && j > 0 {
                    cost[idx(i - 1, j - 1)]
                } else {
                    f64::INFINITY
                };
                let up = if i > 0 {
                    cost[idx(i - 1, j)] + penalty
                } else {
                    f64::INFINITY
                };
                let left = if j > 0 {
                    cost[idx(i, j - 1)] + penalty
                } else {
                    f64::INFINITY
                };
                if diag <= up && diag <= left {
                    (diag, 1)
                } else if up <= left {
                    (up, 2)
                } else {
                    (left, 3)
                }
            };
            cost[idx(i, j)] = best + local;
            from[idx(i, j)] = step;
        }
    }
    // Backtrack.
    let mut path = Vec::with_capacity(m + n);
    let (mut i, mut j) = (m - 1, n - 1);
    loop {
        path.push((i, j));
        match from[idx(i, j)] {
            0 => break,
            1 => {
                i -= 1;
                j -= 1;
            }
            2 => i -= 1,
            _ => j -= 1,
        }
    }
    path.reverse();
    (cost[idx(m - 1, n - 1)], path)
}

#[cfg(test)]
mod alignment_tests {
    use super::*;

    #[test]
    fn alignment_distance_matches_distance_only_variant() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0];
        let y = [2.0, 4.0, 4.0, 7.0];
        for penalty in [0.0, 1.0, 3.5] {
            let (d, path) = dtw_alignment(&x, &y, penalty);
            assert!((d - dtw_distance_with_penalty(&x, &y, penalty)).abs() < 1e-12);
            assert_eq!(*path.first().unwrap(), (0, 0));
            assert_eq!(*path.last().unwrap(), (x.len() - 1, y.len() - 1));
        }
    }

    #[test]
    fn path_steps_are_valid_warp_moves() {
        let x = [1.0, 1.0, 9.0, 1.0, 1.0, 1.0];
        let y = [1.0, 1.0, 1.0, 9.0, 1.0, 1.0];
        let (_, path) = dtw_alignment(&x, &y, 0.5);
        for w in path.windows(2) {
            let (di, dj) = (w[1].0 - w[0].0, w[1].1 - w[0].1);
            assert!(
                (di, dj) == (1, 1) || (di, dj) == (1, 0) || (di, dj) == (0, 1),
                "invalid step {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn shifted_peaks_get_aligned() {
        let x = [1.0, 1.0, 9.0, 1.0, 1.0, 1.0];
        let y = [1.0, 1.0, 1.0, 9.0, 1.0, 1.0];
        let (_, path) = dtw_alignment(&x, &y, 0.1);
        // The peak at x[2] must be matched to the peak at y[3].
        assert!(path.contains(&(2, 3)), "path {path:?}");
    }

    #[test]
    fn empty_inputs_follow_conventions() {
        let (d, path) = dtw_alignment(&[], &[1.0, 2.0], 3.0);
        assert_eq!(d, 6.0);
        assert!(path.is_empty());
        let (d, path) = dtw_alignment(&[], &[], 3.0);
        assert_eq!(d, 0.0);
        assert!(path.is_empty());
    }
}

/// Min/max envelope of `y` over a sliding window of half-width `band`,
/// evaluated at positions `0..m` (LB_Keogh). Slot `i` covers the `y`
/// indices `[i - band, i + band] ∩ [0, y.len())`; callers guarantee the
/// window is never empty (`m - y.len() <= band` when `m` is larger).
/// Monotonic-deque sweep, `O(m + n)`.
fn band_envelope(y: &[f64], m: usize, band: usize) -> (Vec<f64>, Vec<f64>) {
    let n = y.len();
    let mut lo = vec![0.0; m];
    let mut hi = vec![0.0; m];
    let mut minq: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut maxq: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut pushed = 0usize;
    for i in 0..m {
        let end = (i + band).min(n - 1);
        while pushed <= end {
            while minq.back().is_some_and(|&b| y[b] >= y[pushed]) {
                minq.pop_back();
            }
            minq.push_back(pushed);
            while maxq.back().is_some_and(|&b| y[b] <= y[pushed]) {
                maxq.pop_back();
            }
            maxq.push_back(pushed);
            pushed += 1;
        }
        let start = i.saturating_sub(band);
        while minq.front().is_some_and(|&f| f < start) {
            minq.pop_front();
        }
        while maxq.front().is_some_and(|&f| f < start) {
            maxq.pop_front();
        }
        lo[i] = minq.front().map_or(f64::INFINITY, |&f| y[f]);
        hi[i] = maxq.front().map_or(f64::NEG_INFINITY, |&f| y[f]);
    }
    (lo, hi)
}

/// Per-stage outcome counters of the running-best DTW prune cascade
/// (LB_Kim → length penalty → LB_Keogh → per-column abandon), one count
/// per candidate comparison. Exactly one stage settles each candidate,
/// so the stage counters always sum to [`PruneStats::candidates`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PruneStats {
    /// Candidate comparisons submitted to the cascade (including the
    /// scan-seeding first candidate, which always runs the full DP).
    pub candidates: u64,
    /// Pruned by the LB_Kim endpoint bound alone.
    pub lb_kim: u64,
    /// Pruned once the length-difference penalty joined LB_Kim.
    pub length_penalty: u64,
    /// Pruned by the band-constrained LB_Keogh envelope bound.
    pub lb_keogh: u64,
    /// Abandoned mid-DP when a whole column exceeded the cutoff.
    pub early_abandon: u64,
    /// Ran the full DP to completion.
    pub full_dp: u64,
}

impl PruneStats {
    /// Candidates settled without completing the DP.
    pub fn pruned(&self) -> u64 {
        self.lb_kim + self.length_penalty + self.lb_keogh + self.early_abandon
    }

    /// Fraction of candidates settled without completing the DP
    /// (0 when no candidates were scanned).
    pub fn pruned_frac(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.pruned() as f64 / self.candidates as f64
        }
    }

    /// Folds another scan's counters into this one.
    pub fn merge(&mut self, other: &PruneStats) {
        self.candidates += other.candidates;
        self.lb_kim += other.lb_kim;
        self.length_penalty += other.length_penalty;
        self.lb_keogh += other.lb_keogh;
        self.early_abandon += other.early_abandon;
        self.full_dp += other.full_dp;
    }
}

/// Which cascade stage settled one candidate comparison.
enum Settled {
    Kim,
    Length,
    Keogh,
    Abandon,
    Full(f64),
}

impl Settled {
    /// Charges this outcome to its [`PruneStats`] counter.
    fn charge(&self, stats: &mut PruneStats) {
        stats.candidates += 1;
        match self {
            Settled::Kim => stats.lb_kim += 1,
            Settled::Length => stats.length_penalty += 1,
            Settled::Keogh => stats.lb_keogh += 1,
            Settled::Abandon => stats.early_abandon += 1,
            Settled::Full(_) => stats.full_dp += 1,
        }
    }
}

/// The staged pruning cascade for [`dtw_distance_with_penalty`] against a
/// running-best `cutoff`: each stage either proves the true distance
/// exceeds `cutoff` (settling the candidate) or passes it on, ending in
/// the full DP with per-column early abandoning. The *decision* (pruned
/// vs completed, and the completed bits) is identical whichever stage
/// fires — staging exists so callers can attribute prune rates.
///
/// Note the bounds are *not* unconditional lower bounds. The LB_Keogh
/// term only bounds warp paths that stay within
/// `band = floor(cutoff / penalty)` of the synchronized diagonal — but
/// any path deviating further contains more than `band` asynchronous
/// steps and therefore already costs more than `cutoff`, so the pruning
/// decision stays exact. The unconditional stages (LB_Kim endpoints,
/// then the length-difference penalty) need no such argument.
fn dtw_pruned_staged(x: &[f64], y: &[f64], penalty: f64, cutoff: f64) -> Settled {
    if x.is_empty() || y.is_empty() {
        let d = (x.len() + y.len()) as f64 * penalty;
        return if d > cutoff {
            Settled::Length
        } else {
            Settled::Full(d)
        };
    }
    let (m, n) = (x.len(), y.len());
    let lendiff = m.abs_diff(n) as f64 * penalty;
    // LB_Kim: the cells (0, 0) and (m-1, n-1) lie on every warp path.
    let kim = if m == 1 && n == 1 {
        (x[0] - y[0]).abs()
    } else {
        (x[0] - y[0]).abs() + (x[m - 1] - y[n - 1]).abs()
    };
    if kim > cutoff {
        return Settled::Kim;
    }
    if kim + lendiff > cutoff {
        return Settled::Length;
    }
    // LB_Keogh within the deviation band implied by the cutoff.
    if penalty > 0.0 && cutoff >= 0.0 {
        let ratio = cutoff / penalty;
        if ratio < (m + n) as f64 {
            let band = ratio as usize;
            if m.abs_diff(n) <= band {
                let (lo, hi) = band_envelope(y, m, band);
                let keogh: f64 = x
                    .iter()
                    .zip(lo.iter().zip(&hi))
                    .map(|(&v, (&l, &h))| {
                        if v > h {
                            v - h
                        } else if v < l {
                            l - v
                        } else {
                            0.0
                        }
                    })
                    .sum();
                if keogh + lendiff > cutoff {
                    return Settled::Keogh;
                }
            }
        }
    }
    // Full-width DP, mirroring dtw_distance_with_penalty cell for cell so
    // a completed run returns the exact same bits.
    let (rows, cols) = if x.len() <= y.len() { (x, y) } else { (y, x) };
    let m = rows.len();
    let mut prev = vec![f64::INFINITY; m];
    let mut cur = vec![f64::INFINITY; m];

    for (j, &cv) in cols.iter().enumerate() {
        std::mem::swap(&mut prev, &mut cur);
        let mut colmin = f64::INFINITY;
        for (i, &rv) in rows.iter().enumerate() {
            let local = (cv - rv).abs();
            let best = if i == 0 && j == 0 {
                0.0
            } else {
                let diag = if i > 0 && j > 0 {
                    prev[i - 1]
                } else {
                    f64::INFINITY
                };
                let up = if i > 0 {
                    cur[i - 1] + penalty
                } else {
                    f64::INFINITY
                };
                let left = if j > 0 {
                    prev[i] + penalty
                } else {
                    f64::INFINITY
                };
                diag.min(up).min(left)
            };
            cur[i] = best + local;
            colmin = colmin.min(cur[i]);
        }
        // Every warp path to the final cell crosses column j, and all later
        // additions (locals, penalties) are nonnegative, so once the whole
        // column exceeds the cutoff the final distance must too.
        if colmin > cutoff {
            return Settled::Abandon;
        }
    }
    Settled::Full(cur[m - 1])
}

/// [`dtw_distance_with_penalty`] with exact early abandoning against a
/// running-best `cutoff` (§4.2 cost note; LB_Keogh / UCR-suite style).
///
/// Returns `None` only when the true distance provably exceeds `cutoff`
/// (established by a cheap lower-bound prefilter or by abandoning the DP
/// once a whole column exceeds `cutoff`). Otherwise returns
/// `Some(distance)` where `distance` is **bit-identical** to
/// [`dtw_distance_with_penalty`]: whenever the bound cannot prune, the
/// full-width DP runs unchanged — pruning never alters computed values,
/// only skips computations whose outcome is already decided.
///
/// A returned `Some(d)` may still have `d > cutoff` (abandoning is
/// best-effort); callers compare against their running best as usual.
///
/// # Panics
///
/// Panics if `penalty` is negative or `cutoff` is NaN.
///
/// # Examples
///
/// ```
/// use rbv_core::distance::{dtw_distance_with_penalty, dtw_distance_with_penalty_pruned};
///
/// let x = [1.0, 5.0, 2.0, 8.0, 3.0];
/// let y = [2.0, 4.0, 4.0, 7.0];
/// let full = dtw_distance_with_penalty(&x, &y, 1.0);
/// // Generous cutoff: completes, bit-identical to the full DP.
/// assert_eq!(dtw_distance_with_penalty_pruned(&x, &y, 1.0, full + 1.0), Some(full));
/// // Hopeless cutoff: pruned.
/// assert_eq!(dtw_distance_with_penalty_pruned(&x, &y, 1.0, 0.1), None);
/// ```
pub fn dtw_distance_with_penalty_pruned(
    x: &[f64],
    y: &[f64],
    penalty: f64,
    cutoff: f64,
) -> Option<f64> {
    assert!(penalty >= 0.0, "penalty must be nonnegative");
    assert!(!cutoff.is_nan(), "cutoff must not be NaN");
    match dtw_pruned_staged(x, y, penalty, cutoff) {
        Settled::Full(d) => Some(d),
        _ => None,
    }
}

/// Running-best nearest-neighbor search over candidate series using the
/// penalty-DTW measure, accelerated by [`dtw_distance_with_penalty_pruned`].
///
/// Returns `Some((index, distance))` of the closest candidate, or `None`
/// when `candidates` is empty. Ties keep the earliest candidate, and the
/// result is **bit-identical** to the naive scan that computes
/// [`dtw_distance_with_penalty`] for every candidate and takes the first
/// minimum — pruning only skips candidates that provably cannot improve
/// the running best.
///
/// # Panics
///
/// Panics if `penalty` is negative.
///
/// # Examples
///
/// ```
/// use rbv_core::distance::nearest_series;
///
/// let query = [1.0, 2.0, 3.0];
/// let candidates = vec![vec![9.0, 9.0, 9.0], vec![1.0, 2.0, 3.5], vec![0.0; 3]];
/// let (idx, d) = nearest_series(&query, &candidates, 1.0).unwrap();
/// assert_eq!(idx, 1);
/// assert!((d - 0.5).abs() < 1e-12);
/// ```
pub fn nearest_series<S: AsRef<[f64]>>(
    query: &[f64],
    candidates: &[S],
    penalty: f64,
) -> Option<(usize, f64)> {
    nearest_series_with_stats(query, candidates, penalty).0
}

/// [`nearest_series`] plus per-stage prune attribution: which cascade
/// stage (LB_Kim, length penalty, LB_Keogh, per-column abandon, or the
/// full DP) settled each candidate comparison. The nearest-neighbor
/// result is the same bits as [`nearest_series`]; the stats are what the
/// ledger's `kernel.prune.*` counters report.
///
/// # Panics
///
/// Panics if `penalty` is negative.
pub fn nearest_series_with_stats<S: AsRef<[f64]>>(
    query: &[f64],
    candidates: &[S],
    penalty: f64,
) -> (Option<(usize, f64)>, PruneStats) {
    assert!(penalty >= 0.0, "penalty must be nonnegative");
    let mut stats = PruneStats::default();
    let mut best: Option<(usize, f64)> = None;
    for (i, cand) in candidates.iter().enumerate() {
        match best {
            None => {
                best = Some((i, dtw_distance_with_penalty(query, cand.as_ref(), penalty)));
                stats.candidates += 1;
                stats.full_dp += 1;
            }
            Some((_, b)) => {
                let settled = dtw_pruned_staged(query, cand.as_ref(), penalty, b);
                settled.charge(&mut stats);
                if let Settled::Full(d) = settled {
                    if d < b {
                        best = Some((i, d));
                    }
                }
            }
        }
    }
    (best, stats)
}

#[cfg(test)]
mod fastpath_tests {
    use super::*;

    /// Deterministic pseudo-random series (splitmix64 bits -> [0, 10)).
    fn series(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64 * 10.0
            })
            .collect()
    }

    #[test]
    fn pruned_matches_full_bitwise_or_proves_cutoff_exceeded() {
        for (sx, sy, lx, ly) in [
            (1, 2, 40, 40),
            (3, 4, 25, 60),
            (5, 6, 1, 30),
            (7, 8, 17, 16),
        ] {
            let x = series(sx, lx);
            let y = series(sy, ly);
            for penalty in [0.0, 0.5, 2.0] {
                let full = dtw_distance_with_penalty(&x, &y, penalty);
                for cutoff in [0.0, full * 0.5, full, full * 1.5, f64::INFINITY] {
                    match dtw_distance_with_penalty_pruned(&x, &y, penalty, cutoff) {
                        Some(d) => assert_eq!(d.to_bits(), full.to_bits()),
                        None => assert!(full > cutoff, "pruned {full} at cutoff {cutoff}"),
                    }
                }
            }
        }
    }

    #[test]
    fn pruned_at_exact_cutoff_is_not_pruned() {
        let x = series(11, 30);
        let y = series(12, 30);
        let full = dtw_distance_with_penalty(&x, &y, 1.0);
        // cutoff == distance: "provably exceeds" is strict, must complete.
        assert_eq!(
            dtw_distance_with_penalty_pruned(&x, &y, 1.0, full),
            Some(full)
        );
    }

    #[test]
    fn nearest_matches_naive_scan_bitwise() {
        let query = series(100, 35);
        let candidates: Vec<Vec<f64>> = (0..12)
            .map(|i| series(200 + i, 20 + (i as usize) * 3))
            .collect();
        for penalty in [0.0, 0.7, 3.0] {
            let naive = candidates
                .iter()
                .map(|c| dtw_distance_with_penalty(&query, c, penalty))
                .enumerate()
                .fold(None::<(usize, f64)>, |acc, (i, d)| match acc {
                    Some((_, b)) if d >= b => acc,
                    _ => Some((i, d)),
                });
            let fast = nearest_series(&query, &candidates, penalty);
            assert_eq!(
                fast.map(|(i, d)| (i, d.to_bits())),
                naive.map(|(i, d)| (i, d.to_bits()))
            );
        }
    }

    #[test]
    fn nearest_handles_edge_cases() {
        assert_eq!(nearest_series::<Vec<f64>>(&[1.0], &[], 1.0), None);
        let cands = vec![vec![], vec![1.0]];
        let (idx, d) = nearest_series(&[1.0], &cands, 2.0).unwrap();
        assert_eq!((idx, d), (1, 0.0));
    }

    #[test]
    fn stats_partition_the_candidates_and_preserve_the_result() {
        let query = series(100, 35);
        let candidates: Vec<Vec<f64>> = (0..16)
            .map(|i| series(300 + i, 15 + (i as usize) * 4))
            .collect();
        for penalty in [0.0, 0.7, 3.0] {
            let (fast, stats) = nearest_series_with_stats(&query, &candidates, penalty);
            assert_eq!(
                fast.map(|(i, d)| (i, d.to_bits())),
                nearest_series(&query, &candidates, penalty).map(|(i, d)| (i, d.to_bits()))
            );
            assert_eq!(stats.candidates, candidates.len() as u64);
            assert_eq!(stats.pruned() + stats.full_dp, stats.candidates);
            assert!(stats.full_dp >= 1, "the seed candidate always completes");
            assert!((0.0..=1.0).contains(&stats.pruned_frac()));
        }
    }

    #[test]
    fn each_cascade_stage_is_reachable() {
        // Seed candidate: a perfect match, driving the cutoff to 0.
        let query = vec![1.0, 1.0, 1.0, 1.0];
        let candidates: Vec<Vec<f64>> = vec![
            query.clone(),             // full DP (seeds the running best)
            vec![50.0, 1.0, 1.0, 1.0], // endpoint blowout: LB_Kim
            vec![1.0; 12],             // same values, longer: length penalty
            vec![1.0, 4.0, 4.0, 1.0],  // matching endpoints, off-band middle: LB_Keogh
        ];
        let (best, stats) = nearest_series_with_stats(&query, &candidates, 2.0);
        assert_eq!(best, Some((0, 0.0)));
        assert_eq!(stats.candidates, 4);
        assert_eq!(stats.full_dp, 1);
        assert_eq!(stats.lb_kim, 1, "{stats:?}");
        assert_eq!(stats.length_penalty, 1, "{stats:?}");
        assert_eq!(stats.lb_keogh, 1, "{stats:?}");
        assert_eq!(stats.early_abandon, 0, "{stats:?}");
    }

    #[test]
    fn early_abandon_fires_when_bounds_cannot() {
        // Zero penalty disables the Keogh band and the length stage; the
        // endpoints match, so only the column scan can prune.
        let query = vec![1.0, 9.0, 1.0, 9.0, 1.0];
        let candidates: Vec<Vec<f64>> = vec![
            query.clone(),                 // seeds cutoff 0
            vec![1.0, 2.0, 2.0, 2.0, 1.0], // matching endpoints, costly middle
        ];
        let (best, stats) = nearest_series_with_stats(&query, &candidates, 0.0);
        assert_eq!(best, Some((0, 0.0)));
        assert_eq!(stats.early_abandon, 1, "{stats:?}");
    }

    #[test]
    fn merge_accumulates_fieldwise() {
        let a = PruneStats {
            candidates: 4,
            lb_kim: 1,
            length_penalty: 1,
            lb_keogh: 0,
            early_abandon: 1,
            full_dp: 1,
        };
        let mut m = a;
        m.merge(&a);
        assert_eq!(m.candidates, 8);
        assert_eq!(m.pruned(), 6);
        assert_eq!(m.full_dp, 2);
        assert_eq!(PruneStats::default().pruned_frac(), 0.0);
    }

    #[test]
    fn envelope_brackets_every_windowed_value() {
        let y = series(42, 50);
        for band in [0, 1, 3, 10, 60] {
            let (lo, hi) = band_envelope(&y, y.len(), band);
            for i in 0..y.len() {
                let start = i.saturating_sub(band);
                let end = (i + band).min(y.len() - 1);
                for &v in &y[start..=end] {
                    assert!(lo[i] <= v && v <= hi[i]);
                }
                assert!(lo[i] <= y[i] && y[i] <= hi[i]);
            }
        }
    }
}
