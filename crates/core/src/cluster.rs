//! Request classification by k-medoids clustering (§4.2).
//!
//! The paper classifies requests into groups with similar variation
//! patterns. Since "the mean of a set of request variation patterns is not
//! well defined", it replaces k-means' centroid with the cluster *medoid*:
//! the member whose summed distance to all other members is minimal. This
//! module implements that algorithm over a precomputed [`DistanceMatrix`]
//! plus the Figure 7 quality metric, [`divergence_from_centroid`].

/// A dense symmetric pairwise distance matrix.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    // Row-major full matrix; n is at most a few thousand requests.
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all pairwise distances via `dist`.
    ///
    /// # Contract
    ///
    /// `dist` must be a **pure, symmetric** function of `(i, j)` with an
    /// implicit zero diagonal: only `i < j` pairs are evaluated and the
    /// value is mirrored to `(j, i)`, so an asymmetric closure would be
    /// silently half-discarded. Debug builds verify symmetry on a few
    /// sampled pairs (which calls `dist` with `i > j` — a stateful
    /// closure counting invocations would observe the extra calls).
    ///
    /// # Panics
    ///
    /// Panics if `dist` returns a negative or NaN value, or (debug builds
    /// only) if a sampled pair reveals `dist(i, j) != dist(j, i)`.
    pub fn compute(n: usize, mut dist: impl FnMut(usize, usize) -> f64) -> DistanceMatrix {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = dist(i, j);
                assert!(d >= 0.0, "distance({i},{j}) = {d} must be nonnegative");
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        #[cfg(debug_assertions)]
        debug_check_symmetry(n, &data, dist);
        DistanceMatrix { n, data }
    }

    /// [`DistanceMatrix::compute`] with the `i < j` pair evaluations
    /// fanned across `pool` — one upper-triangle row tile per task,
    /// claimed dynamically so the shrinking rows balance out.
    ///
    /// Bit-identical to the serial path for any thread count: exactly the
    /// same `(i, j)` pairs are evaluated and each value lands in the same
    /// cell, so `compute_par(n, &Pool::new(8), d)` equals
    /// `compute(n, d)` cell for cell (property-tested). The same purity /
    /// symmetry contract applies, and `dist` must additionally be `Sync`
    /// (it is shared by the workers).
    ///
    /// # Panics
    ///
    /// Panics if `dist` returns a negative or NaN value (the worker's
    /// panic is propagated), or (debug builds only) on a sampled
    /// asymmetric pair.
    pub fn compute_par(
        n: usize,
        pool: &rbv_par::Pool,
        dist: impl Fn(usize, usize) -> f64 + Sync,
    ) -> DistanceMatrix {
        // Each task computes one row tile of the upper triangle.
        let rows: Vec<Vec<f64>> = pool.ordered_tasks(n, |i| {
            ((i + 1)..n)
                .map(|j| {
                    let d = dist(i, j);
                    assert!(d >= 0.0, "distance({i},{j}) = {d} must be nonnegative");
                    d
                })
                .collect()
        });
        let mut data = vec![0.0; n * n];
        for (i, row) in rows.iter().enumerate() {
            for (off, &d) in row.iter().enumerate() {
                let j = i + 1 + off;
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        #[cfg(debug_assertions)]
        debug_check_symmetry(n, &data, dist);
        DistanceMatrix { n, data }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix covers no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between points `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j]
    }

    /// The medoid of `members`: the member minimizing summed distance to
    /// the other members. Returns `None` on an empty slice. Ties resolve
    /// to the earliest member in slice order.
    pub fn medoid_of(&self, members: &[usize]) -> Option<usize> {
        self.medoid_of_pooled(members, &rbv_par::Pool::serial())
    }

    /// [`DistanceMatrix::medoid_of`] with the per-candidate cost sums
    /// fanned across `pool`. Each candidate's sum is accumulated in
    /// member order and the minimum is taken in candidate order, so the
    /// result is identical to the serial path for any thread count.
    pub fn medoid_of_pooled(&self, members: &[usize], pool: &rbv_par::Pool) -> Option<usize> {
        let costs: Vec<f64> =
            pool.ordered_map(members, |&c| members.iter().map(|&m| self.get(c, m)).sum());
        members
            .iter()
            .zip(costs)
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(&c, _)| c)
    }
}

/// Debug-only spot check of the symmetry contract: compares a handful of
/// deterministically sampled mirrored pairs within a small relative
/// tolerance (a symmetric measure computed by two code paths may differ
/// in final-ulp rounding).
#[cfg(debug_assertions)]
fn debug_check_symmetry(n: usize, data: &[f64], mut dist: impl FnMut(usize, usize) -> f64) {
    if n < 2 {
        return;
    }
    // A few spread-out pairs (deduplicated by the i < j filter).
    for (i, j) in [(0, n - 1), (n / 4, n / 2), (n / 3, n - 2)] {
        if i >= j {
            continue;
        }
        let forward = data[i * n + j];
        let backward = dist(j, i);
        let scale = forward.abs().max(backward.abs()).max(1.0);
        debug_assert!(
            (forward - backward).abs() <= 1e-9 * scale,
            "dist must be symmetric: dist({i},{j}) = {forward} but dist({j},{i}) = {backward}"
        );
    }
}

/// Result of a k-medoids run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// `assignments[i]` is the cluster index of point `i`.
    pub assignments: Vec<usize>,
    /// Medoid point index per cluster.
    pub medoids: Vec<usize>,
    /// Total distance of every point to its medoid.
    pub cost: f64,
}

impl Clustering {
    /// Point indices belonging to cluster `c`.
    pub fn members_of(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == c).then_some(i))
            .collect()
    }

    /// The medoid point index assigned to point `i`.
    pub fn medoid_for(&self, i: usize) -> usize {
        self.medoids[self.assignments[i]]
    }
}

/// Runs k-medoids: greedy farthest-point seeding, then alternating
/// assignment and medoid update until stable (at most `max_iters` rounds).
///
/// If `k >= n` every point becomes its own medoid. Deterministic.
///
/// # Panics
///
/// Panics if `k == 0` or the matrix is empty.
///
/// # Examples
///
/// ```
/// use rbv_core::cluster::{k_medoids, DistanceMatrix};
///
/// // Two well-separated groups of points on a line.
/// let points = [0.0_f64, 0.5, 1.0, 100.0, 100.5, 101.0];
/// let dm = DistanceMatrix::compute(points.len(), |i, j| (points[i] - points[j]).abs());
/// let clustering = k_medoids(&dm, 2, 50);
///
/// // Each group shares a cluster; the medoids are the group centers.
/// assert_eq!(clustering.assignments[0], clustering.assignments[2]);
/// assert_ne!(clustering.assignments[0], clustering.assignments[3]);
/// let mut medoids = clustering.medoids.clone();
/// medoids.sort();
/// assert_eq!(medoids, vec![1, 4]);
/// ```
pub fn k_medoids(dm: &DistanceMatrix, k: usize, max_iters: usize) -> Clustering {
    k_medoids_impl(dm, k, max_iters, &rbv_par::Pool::serial())
}

/// [`k_medoids`] with the `O(n·k)` assignment sweeps and `O(|cluster|²)`
/// medoid updates fanned across `pool`.
///
/// The result is **bit-identical** to the serial [`k_medoids`] for any
/// thread count (property-tested): every per-point nearest-medoid
/// decision is a pure function of the matrix and the current medoids,
/// results are collected in point order, and the cost sum is reduced in
/// that same order on the calling thread — so even the floating-point
/// rounding matches the serial path.
///
/// # Panics
///
/// Panics if `k == 0` or the matrix is empty.
pub fn k_medoids_par(
    dm: &DistanceMatrix,
    k: usize,
    max_iters: usize,
    pool: &rbv_par::Pool,
) -> Clustering {
    k_medoids_impl(dm, k, max_iters, pool)
}

fn k_medoids_impl(
    dm: &DistanceMatrix,
    k: usize,
    max_iters: usize,
    pool: &rbv_par::Pool,
) -> Clustering {
    let n = dm.len();
    assert!(k > 0, "need at least one cluster");
    assert!(n > 0, "cannot cluster zero points");

    if k >= n {
        return Clustering {
            assignments: (0..n).collect(),
            medoids: (0..n).collect(),
            cost: 0.0,
        };
    }

    // Seeding: first medoid = the most central point; each further medoid
    // = the point farthest from its nearest existing medoid.
    let first = dm
        .medoid_of_pooled(&(0..n).collect::<Vec<_>>(), pool)
        .unwrap_or_else(|| unreachable!("matrix validated nonempty above"));
    let mut medoids = vec![first];
    while medoids.len() < k {
        let next = (0..n)
            .filter(|i| !medoids.contains(i))
            .max_by(|&a, &b| {
                let da = nearest(dm, a, &medoids).1;
                let db = nearest(dm, b, &medoids).1;
                da.total_cmp(&db)
            })
            .unwrap_or_else(|| unreachable!("k < n leaves candidates"));
        medoids.push(next);
    }

    let mut assignments = vec![0usize; n];
    let mut prev_cost = f64::INFINITY;
    for _ in 0..max_iters {
        // Assignment sweep, fanned across the pool; the cost reduction
        // happens in point order here so it is bit-identical serial/par.
        let sweep = pool.ordered_tasks(n, |i| nearest_cluster(dm, i, &medoids));
        let mut new_cost = 0.0;
        for (slot, (c, d)) in assignments.iter_mut().zip(&sweep) {
            *slot = *c;
            new_cost += d;
        }
        // Medoid update step: membership lists serially (cheap), the
        // O(|cluster|²) medoid searches across the pool.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); medoids.len()];
        for (i, &c) in assignments.iter().enumerate() {
            members[c].push(i);
        }
        let updates = pool.ordered_map(&members, |m| dm.medoid_of(m));
        let mut changed = false;
        for (medoid, update) in medoids.iter_mut().zip(updates) {
            if let Some(m) = update {
                if m != *medoid {
                    *medoid = m;
                    changed = true;
                }
            }
        }
        if !changed && new_cost >= prev_cost {
            break;
        }
        prev_cost = new_cost;
    }
    // Final assignment against the settled medoids.
    let sweep = pool.ordered_tasks(n, |i| nearest_cluster(dm, i, &medoids));
    let mut final_cost = 0.0;
    for (slot, (c, d)) in assignments.iter_mut().zip(&sweep) {
        *slot = *c;
        final_cost += d;
    }
    Clustering {
        assignments,
        medoids,
        cost: final_cost,
    }
}

fn nearest(dm: &DistanceMatrix, i: usize, medoids: &[usize]) -> (usize, f64) {
    medoids
        .iter()
        .map(|&m| (m, dm.get(i, m)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or_else(|| unreachable!("at least one medoid"))
}

fn nearest_cluster(dm: &DistanceMatrix, i: usize, medoids: &[usize]) -> (usize, f64) {
    medoids
        .iter()
        .enumerate()
        .map(|(c, &m)| (c, dm.get(i, m)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or_else(|| unreachable!("at least one medoid"))
}

/// The Figure 7 classification quality metric: each request's divergence
/// from its cluster centroid on a request property, averaged over all
/// requests, in percent.
///
/// For request `r` with property `C_r` and its centroid's property `C_c`:
/// `|C_r − C_c| / C_c × 100%`.
///
/// Centroids with a zero property value are skipped (undefined divergence).
/// Returns `None` if nothing is measurable.
///
/// # Panics
///
/// Panics if `property.len()` differs from the clustering size.
pub fn divergence_from_centroid(clustering: &Clustering, property: &[f64]) -> Option<f64> {
    assert_eq!(
        property.len(),
        clustering.assignments.len(),
        "one property value per point required"
    );
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..property.len() {
        let c = property[clustering.medoid_for(i)];
        if c != 0.0 {
            sum += (property[i] - c).abs() / c * 100.0;
            count += 1;
        }
    }
    (count > 0).then(|| sum / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points on a line; distance = |a - b|.
    fn line_matrix(points: &[f64]) -> DistanceMatrix {
        DistanceMatrix::compute(points.len(), |i, j| (points[i] - points[j]).abs())
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let dm = line_matrix(&[0.0, 3.0, 10.0]);
        for i in 0..3 {
            assert_eq!(dm.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(dm.get(i, j), dm.get(j, i));
            }
        }
        assert_eq!(dm.get(0, 2), 10.0);
    }

    #[test]
    fn medoid_of_line_cluster_is_median_like() {
        let dm = line_matrix(&[0.0, 1.0, 2.0, 10.0]);
        // Sum distances: p0: 13, p1: 11, p2: 11, p3: 27 — tie between the
        // two central points resolves to the first.
        assert_eq!(dm.medoid_of(&[0, 1, 2, 3]), Some(1));
        assert_eq!(dm.medoid_of(&[]), None);
    }

    #[test]
    fn two_well_separated_clusters_recovered() {
        let points = [0.0, 0.5, 1.0, 100.0, 100.5, 101.0];
        let dm = line_matrix(&points);
        let c = k_medoids(&dm, 2, 50);
        // Same-group points share a cluster; cross-group don't.
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[1], c.assignments[2]);
        assert_eq!(c.assignments[3], c.assignments[4]);
        assert_eq!(c.assignments[4], c.assignments[5]);
        assert_ne!(c.assignments[0], c.assignments[3]);
        // Medoids are the middle points of each group.
        let mut ms = c.medoids.clone();
        ms.sort();
        assert_eq!(ms, vec![1, 4]);
    }

    #[test]
    fn k_ge_n_gives_singletons() {
        let dm = line_matrix(&[1.0, 2.0, 3.0]);
        let c = k_medoids(&dm, 5, 10);
        assert_eq!(c.assignments, vec![0, 1, 2]);
        assert_eq!(c.cost, 0.0);
    }

    #[test]
    fn k1_picks_global_medoid() {
        let points = [0.0, 1.0, 2.0, 3.0, 50.0];
        let dm = line_matrix(&points);
        let c = k_medoids(&dm, 1, 20);
        assert_eq!(c.medoids, vec![2]);
        assert!(c.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn cost_is_sum_of_distances_to_medoids() {
        let points = [0.0, 2.0, 10.0, 12.0];
        let dm = line_matrix(&points);
        let c = k_medoids(&dm, 2, 20);
        let manual: f64 = (0..4).map(|i| dm.get(i, c.medoid_for(i))).sum();
        assert!((c.cost - manual).abs() < 1e-12);
        assert!((c.cost - 4.0).abs() < 1e-12); // 2 + 2 within the two pairs
    }

    #[test]
    fn more_clusters_never_raise_cost() {
        let points: Vec<f64> = (0..20).map(|i| (i * i) as f64 * 0.37).collect();
        let dm = line_matrix(&points);
        let mut prev = f64::INFINITY;
        for k in 1..=6 {
            let c = k_medoids(&dm, k, 60);
            assert!(
                c.cost <= prev + 1e-9,
                "k={k} cost {} > previous {prev}",
                c.cost
            );
            prev = c.cost;
        }
    }

    #[test]
    fn members_of_partitions_everything() {
        let points: Vec<f64> = (0..15).map(|i| i as f64 * 1.7).collect();
        let dm = line_matrix(&points);
        let c = k_medoids(&dm, 3, 50);
        let total: usize = (0..3).map(|k| c.members_of(k).len()).sum();
        assert_eq!(total, 15);
    }

    #[test]
    fn deterministic() {
        let points: Vec<f64> = (0..30).map(|i| ((i * 7919) % 100) as f64).collect();
        let dm = line_matrix(&points);
        let a = k_medoids(&dm, 4, 50);
        let b = k_medoids(&dm, 4, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn divergence_zero_for_tight_clusters() {
        let points = [1.0, 1.0, 1.0, 5.0, 5.0];
        let dm = line_matrix(&points);
        let c = k_medoids(&dm, 2, 20);
        let div = divergence_from_centroid(&c, &points).unwrap();
        assert_eq!(div, 0.0);
    }

    #[test]
    fn divergence_reflects_property_spread() {
        // One cluster (by distance) but the property varies 100% around
        // the centroid's value.
        let dm = DistanceMatrix::compute(3, |_, _| 0.1);
        let c = k_medoids(&dm, 1, 10);
        let centroid = c.medoids[0];
        let mut property = vec![0.0; 3];
        property[centroid] = 10.0;
        for (i, p) in property.iter_mut().enumerate() {
            if i != centroid {
                *p = 20.0;
            }
        }
        let div = divergence_from_centroid(&c, &property).unwrap();
        // Two of three points diverge by 100%.
        assert!((div - 200.0 / 3.0).abs() < 1e-9, "div {div}");
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_k_panics() {
        let dm = line_matrix(&[1.0, 2.0]);
        k_medoids(&dm, 0, 10);
    }

    #[test]
    #[should_panic(expected = "must be nonnegative")]
    fn negative_distance_panics() {
        DistanceMatrix::compute(2, |_, _| -1.0);
    }
}
