//! Determinism suite: the parallel and early-abandoning fast paths must be
//! **bit-identical** to their serial/naive counterparts — not merely close.
//!
//! This is the property that lets `repro bench --all --threads N` emit a
//! byte-identical ledger for every `N`: parallelism only reassigns *who*
//! computes each independent task, never the order in which floating-point
//! reductions are folded (see `rbv_par`'s ordered-collect contract).

use proptest::prelude::*;

use rbv_core::cluster::{k_medoids, k_medoids_par, DistanceMatrix};
use rbv_core::distance::{
    dtw_distance_with_penalty, dtw_distance_with_penalty_pruned, nearest_series,
};
use rbv_par::Pool;

/// Deterministic pseudo-random series (splitmix64 bits mapped to [0, 10)).
fn series(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 10.0
        })
        .collect()
}

/// A DTW distance matrix over pseudo-random series, as Figure 7 builds.
fn dtw_matrix(seed: u64, n: usize, serial: bool, threads: usize) -> DistanceMatrix {
    let data: Vec<Vec<f64>> = (0..n)
        .map(|i| series(seed.wrapping_add(i as u64), 8 + (i % 7) * 4))
        .collect();
    let dist = |i: usize, j: usize| dtw_distance_with_penalty(&data[i], &data[j], 1.5);
    if serial {
        DistanceMatrix::compute(n, dist)
    } else {
        DistanceMatrix::compute_par(n, &Pool::new(threads), dist)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `DistanceMatrix::compute_par` scatters row tiles back in submission
    /// order, so every thread count reproduces the serial matrix exactly.
    #[test]
    fn distance_matrix_par_is_bit_identical_to_serial(
        seed in 0u64..1_000,
        n in 1usize..24,
        threads in 1usize..8,
    ) {
        let serial = dtw_matrix(seed, n, true, 1);
        let par = dtw_matrix(seed, n, false, threads);
        prop_assert_eq!(serial.len(), par.len());
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(
                    serial.get(i, j).to_bits(),
                    par.get(i, j).to_bits(),
                    "cell ({}, {}) diverged at {} threads", i, j, threads
                );
            }
        }
    }

    /// Parallel k-medoids (assignment sweeps and medoid updates fanned over
    /// the pool) converges to the identical clustering: same medoids, same
    /// assignments, bit-identical cost.
    #[test]
    fn k_medoids_par_is_bit_identical_to_serial(
        seed in 0u64..1_000,
        n in 2usize..24,
        threads in 1usize..8,
        k in 1usize..5,
    ) {
        let k = k.min(n);
        let dm = dtw_matrix(seed, n, true, 1);
        let serial = k_medoids(&dm, k, 30);
        let par = k_medoids_par(&dm, k, 30, &Pool::new(threads));
        prop_assert_eq!(&serial.medoids, &par.medoids);
        prop_assert_eq!(&serial.assignments, &par.assignments);
        prop_assert_eq!(serial.cost.to_bits(), par.cost.to_bits());
    }

    /// The early-abandoning DTW either completes with the exact bits of the
    /// full DP or proves the distance exceeds the cutoff.
    #[test]
    fn pruned_dtw_is_exact(
        sx in 0u64..500,
        sy in 500u64..1_000,
        lx in 1usize..50,
        ly in 1usize..50,
        penalty in prop::sample::select(vec![0.0, 0.25, 1.0, 4.0]),
        frac in prop::sample::select(vec![0.0, 0.5, 0.9, 1.0, 1.1, 2.0]),
    ) {
        let x = series(sx, lx);
        let y = series(sy, ly);
        let full = dtw_distance_with_penalty(&x, &y, penalty);
        let cutoff = full * frac;
        match dtw_distance_with_penalty_pruned(&x, &y, penalty, cutoff) {
            Some(d) => prop_assert_eq!(d.to_bits(), full.to_bits()),
            None => prop_assert!(full > cutoff, "pruned {} at cutoff {}", full, cutoff),
        }
    }

    /// The running-best nearest-neighbor scan returns exactly what the
    /// naive full scan returns, including first-wins tie-breaking.
    #[test]
    fn nearest_series_matches_naive_scan(
        qseed in 0u64..500,
        cseed in 500u64..1_000,
        qlen in 1usize..40,
        count in 1usize..16,
        penalty in prop::sample::select(vec![0.0, 0.5, 2.0]),
    ) {
        let query = series(qseed, qlen);
        let candidates: Vec<Vec<f64>> = (0..count)
            .map(|i| series(cseed.wrapping_add(i as u64), 1 + (i * 5) % 45))
            .collect();
        let naive = candidates
            .iter()
            .map(|c| dtw_distance_with_penalty(&query, c, penalty))
            .enumerate()
            .fold(None::<(usize, f64)>, |acc, (i, d)| match acc {
                Some((_, b)) if d >= b => acc,
                _ => Some((i, d)),
            });
        let fast = nearest_series(&query, &candidates, penalty);
        prop_assert_eq!(
            fast.map(|(i, d)| (i, d.to_bits())),
            naive.map(|(i, d)| (i, d.to_bits()))
        );
    }
}
