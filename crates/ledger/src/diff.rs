//! Cross-run regression diffing with per-metric tolerance bands.
//!
//! The differ flattens both ledger documents into named scalar metrics
//! (sketches contribute their count and p50/p99/p99.9, recomputed from
//! the stored buckets), pairs them by name, and checks each pair against
//! a tolerance band chosen by metric kind. Any out-of-band deviation —
//! better *or* worse — is a violation: an improvement that silently moves
//! the baseline is still a change CI should force the author to record.
//!
//! The wall-clock `profile` section is never compared (it is
//! non-deterministic by nature); identity fields (`seed`, `fast`) must
//! match exactly, since comparing runs of different shapes is meaningless.

use rbv_telemetry::{Json, QuantileSketch};

use crate::document::SCHEMA;

/// Default relative band for sketch quantiles and other continuous
/// metrics (one sketch bucket width, rounded up).
pub const TOL_QUANTILE: f64 = 0.022;

/// Default relative band for event counts (requests, samples, switches).
pub const TOL_COUNT: f64 = 0.01;

/// Default *absolute* band for precision/recall scores in `[0, 1]`.
pub const TOL_SCORE: f64 = 0.05;

/// One out-of-band metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Dotted metric path, e.g. `web.cpi.p99`.
    pub metric: String,
    /// Baseline value (`NaN` when the metric is new).
    pub baseline: f64,
    /// Candidate value (`NaN` when the metric disappeared).
    pub candidate: f64,
    /// Measured deviation, in the same units the band is expressed in.
    pub deviation: f64,
    /// The tolerance band the deviation exceeded.
    pub tolerance: f64,
}

impl Violation {
    /// Whether the candidate moved up (regression for cost-like metrics,
    /// improvement for score-like ones — the reader decides).
    pub fn increased(&self) -> bool {
        self.candidate > self.baseline
    }
}

/// Outcome of diffing two ledger documents.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Metrics compared.
    pub compared: usize,
    /// Metrics outside their band, in document order.
    pub violations: Vec<Violation>,
}

impl DiffReport {
    /// Whether the candidate is within every band.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// How a metric's tolerance band is interpreted.
///
/// Public so downstream consumers — the campaign warehouse's regression
/// miner foremost — apply the *same* per-metric bands the `repro diff`
/// gate enforces, instead of inventing a second tolerance vocabulary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Band {
    /// `|c - b| / max(|b|, eps) <= tol`.
    Relative(f64),
    /// `|c - b| <= tol` (scores already live in `[0, 1]`).
    Absolute(f64),
    /// Values must be equal (run identity: seed, fast).
    Exact,
}

impl Band {
    /// The measured `(deviation, tolerance)` pair for a baseline/candidate
    /// value pair, in the units the band is expressed in.
    pub fn deviation(&self, baseline: f64, candidate: f64) -> (f64, f64) {
        match *self {
            Band::Exact => ((candidate - baseline).abs(), 0.0),
            Band::Absolute(tol) => ((candidate - baseline).abs(), tol),
            Band::Relative(tol) => ((candidate - baseline).abs() / baseline.abs().max(1e-9), tol),
        }
    }

    /// Whether `candidate` falls outside the band around `baseline`. A
    /// sub-epsilon absolute difference never breaches a band: near-zero
    /// baselines would otherwise amplify float dust.
    pub fn breached(&self, baseline: f64, candidate: f64) -> bool {
        let (deviation, tolerance) = self.deviation(baseline, candidate);
        deviation > tolerance && (candidate - baseline).abs() > 1e-12
    }
}

/// The tolerance band the regression gate applies to `metric`, selected
/// by metric kind from the leaf name (the band vocabulary shared by
/// `repro diff` and the campaign warehouse's regression miner).
pub fn tolerance_band(metric: &str) -> Band {
    band_for(metric, None)
}

/// The tolerance band for `metric`, honoring a global `--tolerance`
/// override (which widens/narrows every non-exact band uniformly).
fn band_for(metric: &str, override_tol: Option<f64>) -> Band {
    if metric == "seed" || metric == "fast" {
        return Band::Exact;
    }
    if let Some(tol) = override_tol {
        return Band::Relative(tol);
    }
    let leaf = metric.rsplit('.').next().unwrap_or(metric);
    if leaf == "precision" || leaf == "recall" {
        return Band::Absolute(TOL_SCORE);
    }
    let county = [
        "count",
        "requests",
        "samples",
        "offered",
        "completed",
        "failed",
        "flagged",
        "injected",
        "gate_fallbacks",
        // Guard counters: governor windows/decisions, ladder moves, and
        // invariant verdicts are discrete events.
        "windows",
        "backoffs",
        "recoveries",
        "budget_breaches",
        "max_breach_streak",
        "health_transitions",
        "invariant_checks",
        "invariant_violations",
    ];
    if county.contains(&leaf) || metric.contains(".samples.") {
        return Band::Relative(TOL_COUNT);
    }
    Band::Relative(TOL_QUANTILE)
}

/// Pushes `(path, value)` for every metric a sketch contributes.
fn sketch_metrics(prefix: &str, json: &Json, out: &mut Vec<(String, f64)>) -> Result<(), String> {
    let sketch = QuantileSketch::from_json(json).map_err(|e| format!("{prefix}: {e}"))?;
    out.push((format!("{prefix}.count"), sketch.count() as f64));
    for (name, q) in [("p50", 0.50), ("p99", 0.99), ("p999", 0.999)] {
        out.push((
            format!("{prefix}.{name}"),
            sketch.quantile(q).unwrap_or(0.0),
        ));
    }
    Ok(())
}

/// Pushes every numeric leaf of an arbitrary JSON subtree, dotted-path
/// named (used for observer and chaos sections).
fn tree_metrics(prefix: &str, json: &Json, out: &mut Vec<(String, f64)>) {
    match json {
        Json::Num(v) => out.push((prefix.to_string(), *v)),
        Json::Bool(b) => out.push((prefix.to_string(), f64::from(u8::from(*b)))),
        Json::Obj(members) => {
            for (key, value) in members {
                tree_metrics(&format!("{prefix}.{key}"), value, out);
            }
        }
        // Strings (labels) and arrays (sketch buckets don't appear here)
        // carry no comparable scalars.
        _ => {}
    }
}

/// Flattens a ledger document into named scalars, in document order.
///
/// # Errors
///
/// Returns a message when the document is not a valid ledger.
pub fn metrics_of(doc: &Json) -> Result<Vec<(String, f64)>, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("ledger: missing schema")?;
    if schema != SCHEMA {
        return Err(format!("ledger: schema {schema:?} != {SCHEMA:?}"));
    }
    let mut out = Vec::new();
    out.push((
        "seed".to_string(),
        doc.get("seed")
            .and_then(Json::as_f64)
            .ok_or("ledger: missing seed")?,
    ));
    out.push((
        "fast".to_string(),
        match doc.get("fast") {
            Some(Json::Bool(b)) => f64::from(u8::from(*b)),
            _ => return Err("ledger: missing fast".into()),
        },
    ));
    for app in doc
        .get("apps")
        .and_then(Json::as_array)
        .ok_or("ledger: missing apps")?
    {
        let name = app
            .get("app")
            .and_then(Json::as_str)
            .ok_or("ledger: app without a name")?;
        out.push((
            format!("{name}.requests"),
            app.get("requests")
                .and_then(Json::as_f64)
                .ok_or("ledger: app without requests")?,
        ));
        for key in ["latency_us", "cpi", "l2_mpki"] {
            let sub = app
                .get(key)
                .ok_or_else(|| format!("ledger: {name} missing {key}"))?;
            sketch_metrics(&format!("{name}.{key}"), sub, &mut out)?;
        }
        for key in ["observer", "syscall_observer", "easing", "chaos", "guard"] {
            let sub = app
                .get(key)
                .ok_or_else(|| format!("ledger: {name} missing {key}"))?;
            tree_metrics(&format!("{name}.{key}"), sub, &mut out);
        }
    }
    Ok(out)
}

/// Diffs `candidate` against `baseline` with per-metric tolerance bands
/// (or a uniform `override_tol`, from `--tolerance`). A metric present in
/// only one document is always a violation.
///
/// # Errors
///
/// Returns a message when either document is not a valid ledger, or their
/// schemas differ.
pub fn diff_documents(
    baseline: &Json,
    candidate: &Json,
    override_tol: Option<f64>,
) -> Result<DiffReport, String> {
    let base = metrics_of(baseline)?;
    let cand = metrics_of(candidate)?;
    let cand_map: std::collections::BTreeMap<&str, f64> =
        cand.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let base_names: std::collections::BTreeSet<&str> =
        base.iter().map(|(k, _)| k.as_str()).collect();

    let mut violations = Vec::new();
    let mut compared = 0usize;
    for (name, b) in &base {
        let Some(&c) = cand_map.get(name.as_str()) else {
            violations.push(Violation {
                metric: name.clone(),
                baseline: *b,
                candidate: f64::NAN,
                deviation: f64::INFINITY,
                tolerance: 0.0,
            });
            continue;
        };
        compared += 1;
        let band = band_for(name, override_tol);
        let (deviation, tolerance) = band.deviation(*b, c);
        if band.breached(*b, c) {
            violations.push(Violation {
                metric: name.clone(),
                baseline: *b,
                candidate: c,
                deviation,
                tolerance,
            });
        }
    }
    for (name, c) in &cand {
        if !base_names.contains(name.as_str()) {
            violations.push(Violation {
                metric: name.clone(),
                baseline: f64::NAN,
                candidate: *c,
                deviation: f64::INFINITY,
                tolerance: 0.0,
            });
        }
    }
    Ok(DiffReport {
        compared,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::tests::sample_ledger;

    #[test]
    fn identical_documents_diff_clean() {
        let doc = sample_ledger().to_json();
        let report = diff_documents(&doc, &doc, None).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.compared > 20, "compared {}", report.compared);
    }

    #[test]
    fn perturbed_tail_quantile_is_flagged_by_name() {
        let base = sample_ledger();
        let mut cand = base.clone();
        // +5% on every CPI sample moves p99 by ~5%, past the 2.2% band.
        let scaled: Vec<f64> = (1..=40)
            .map(|i| (0.8 + (i % 7) as f64 * 0.3) * 1.05)
            .collect();
        cand.apps[0].cpi = QuantileSketch::of(scaled);
        let report = diff_documents(&base.to_json(), &cand.to_json(), None).unwrap();
        assert!(!report.passed());
        assert!(
            report.violations.iter().any(|v| v.metric == "web.cpi.p99"),
            "expected web.cpi.p99 in {:?}",
            report.violations
        );
        // Untouched apps stay clean.
        assert!(report
            .violations
            .iter()
            .all(|v| !v.metric.starts_with("tpcc.")));
    }

    #[test]
    fn scalar_regression_is_flagged_with_both_values() {
        let base = sample_ledger();
        let mut cand = base.clone();
        cand.apps[1].easing.stock_p99_cpi *= 1.10;
        let report = diff_documents(&base.to_json(), &cand.to_json(), None).unwrap();
        let v = report
            .violations
            .iter()
            .find(|v| v.metric == "tpcc.easing.stock_p99_cpi")
            .expect("violation named after the metric");
        assert!(v.increased());
        assert!((v.deviation - 0.10).abs() < 1e-9);
        // tail_delta_frac moves too; both explanations carry values.
        assert!(v.baseline.is_finite() && v.candidate.is_finite());
    }

    #[test]
    fn tolerance_override_widens_every_band() {
        let base = sample_ledger();
        let mut cand = base.clone();
        cand.apps[1].easing.stock_p99_cpi *= 1.10;
        cand.apps[1].easing.eased_p99_cpi *= 1.10;
        let strict = diff_documents(&base.to_json(), &cand.to_json(), None).unwrap();
        assert!(!strict.passed());
        let loose = diff_documents(&base.to_json(), &cand.to_json(), Some(0.25)).unwrap();
        assert!(loose.passed(), "violations: {:?}", loose.violations);
    }

    #[test]
    fn score_bands_are_absolute() {
        // recall 0.85 -> 0.88 is a 3.5% relative change but only 0.03
        // absolute: inside the 0.05 score band.
        let base = sample_ledger();
        let mut cand = base.clone();
        cand.apps[0].chaos = rbv_telemetry::Json::Obj(vec![(
            "anomaly".into(),
            rbv_telemetry::Json::Obj(vec![
                ("precision".into(), rbv_telemetry::Json::Num(0.9)),
                ("recall".into(), rbv_telemetry::Json::Num(0.88)),
            ]),
        )]);
        let report = diff_documents(&base.to_json(), &cand.to_json(), None).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
    }

    #[test]
    fn missing_and_extra_metrics_are_violations() {
        let base = sample_ledger();
        let mut cand = base.clone();
        cand.apps.pop();
        let report = diff_documents(&base.to_json(), &cand.to_json(), None).unwrap();
        assert!(report.violations.iter().any(|v| v.candidate.is_nan()));

        let report = diff_documents(&cand.to_json(), &base.to_json(), None).unwrap();
        assert!(report.violations.iter().any(|v| v.baseline.is_nan()));
    }

    #[test]
    fn identity_fields_must_match_exactly() {
        let base = sample_ledger();
        let mut cand = base.clone();
        cand.seed = 43;
        let report = diff_documents(&base.to_json(), &cand.to_json(), None).unwrap();
        assert!(report.violations.iter().any(|v| v.metric == "seed"));
    }

    #[test]
    fn profile_section_is_ignored() {
        let base = sample_ledger();
        let mut cand = base.clone();
        cand.profile = Some(rbv_telemetry::Json::Obj(vec![(
            "wall_s.collect".into(),
            rbv_telemetry::Json::Num(3.5),
        )]));
        let report = diff_documents(&base.to_json(), &cand.to_json(), None).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
    }

    #[test]
    fn public_band_api_matches_gate_behavior() {
        // Quantiles: relative 2.2% band.
        assert_eq!(tolerance_band("web.cpi.p99"), Band::Relative(TOL_QUANTILE));
        assert!(tolerance_band("web.cpi.p99").breached(2.0, 2.1));
        assert!(!tolerance_band("web.cpi.p99").breached(2.0, 2.02));
        // Counts: relative 1% band.
        assert_eq!(
            tolerance_band("tpcc.latency_us.count"),
            Band::Relative(TOL_COUNT)
        );
        // Scores: absolute 0.05 band.
        assert_eq!(
            tolerance_band("web.chaos.anomaly.recall"),
            Band::Absolute(TOL_SCORE)
        );
        assert!(!tolerance_band("web.chaos.anomaly.recall").breached(0.85, 0.88));
        // Identity fields must match exactly.
        assert_eq!(tolerance_band("seed"), Band::Exact);
        assert!(tolerance_band("seed").breached(42.0, 43.0));
        // Float dust near zero never breaches.
        assert!(!tolerance_band("x.p99").breached(0.0, 1e-13));
    }

    #[test]
    fn schema_mismatch_errors_instead_of_diffing() {
        let doc = sample_ledger().to_json();
        let mut other = doc.clone();
        if let rbv_telemetry::Json::Obj(members) = &mut other {
            members[0].1 = rbv_telemetry::Json::str("rbv-ledger/v9");
        }
        assert!(diff_documents(&doc, &other, None).is_err());
    }
}
