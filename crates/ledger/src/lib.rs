//! # rbv-ledger
//!
//! The run ledger: one self-describing JSON document per benchmark run,
//! plus cross-run regression diffing with per-metric tolerance bands.
//!
//! * [`collect()`] runs the benchmark matrix (standard, syscall-sampled,
//!   easing, and chaos runs per application) and builds a [`RunLedger`]
//!   of mergeable quantile sketches, observer-effect accounting, and
//!   chaos precision/recall; [`collect_pooled()`] fans the independent
//!   per-application stages over an `rbv_par::Pool` with byte-identical
//!   output at any thread count.
//! * [`RunLedger::to_string_compact`] serializes the document with fixed
//!   member order; with the wall-clock profile excluded, repeat runs at
//!   the same seed produce byte-identical text.
//! * [`diff_documents`] compares a candidate document against a baseline
//!   metric-by-metric, applying sketch-width-aware tolerance bands, and
//!   reports named violations — the CI regression gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod collect;
pub mod diff;
pub mod document;

pub use collect::{collect, collect_app, collect_pooled, short_label, BENCH_APPS};
pub use diff::{diff_documents, metrics_of, tolerance_band, Band, DiffReport, Violation};
pub use document::{AppLedger, EasingDelta, RunLedger, SCHEMA};
