//! The ledger document: a self-describing JSON record of one benchmark
//! run, built from mergeable sketches and the observer-effect accounting.
//!
//! Key order and number formatting are fixed, so the same binary run
//! twice at the same seed serializes byte-identically — the property the
//! regression gate relies on (two equal documents diff clean by
//! construction). Wall-clock self-profiling is *excluded* by default for
//! exactly this reason; [`RunLedger::profile`] is opt-in and ignored by
//! the differ.

use rbv_telemetry::{Json, QuantileSketch};

/// Schema tag embedded in every document; the differ refuses to compare
/// documents with different tags. v2 added the per-app `guard` member
/// (governed-storm outcome); v3 added the per-app `kernel` member
/// (DTW prune-cascade observability); v4 added the per-app `energy`
/// member (powered-run joules and the p99-CPI-vs-joules tradeoff across
/// stock / easing / power-easing).
pub const SCHEMA: &str = "rbv-ledger/v4";

/// Stock-vs-easing tail comparison for one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EasingDelta {
    /// p99 request CPI under the stock scheduler.
    pub stock_p99_cpi: f64,
    /// p99 request CPI under gated contention easing, same workload.
    pub eased_p99_cpi: f64,
}

impl EasingDelta {
    /// Relative tail change: negative when easing improved the p99 CPI.
    pub fn tail_delta_frac(&self) -> f64 {
        if self.stock_p99_cpi > 0.0 {
            (self.eased_p99_cpi - self.stock_p99_cpi) / self.stock_p99_cpi
        } else {
            0.0
        }
    }

    /// Serializes the comparison.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("stock_p99_cpi".into(), Json::Num(self.stock_p99_cpi)),
            ("eased_p99_cpi".into(), Json::Num(self.eased_p99_cpi)),
            ("tail_delta_frac".into(), Json::Num(self.tail_delta_frac())),
        ])
    }

    /// Parses a comparison serialized by [`EasingDelta::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing member.
    pub fn from_json(json: &Json) -> Result<EasingDelta, String> {
        let num = |key: &str| {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("easing: missing number {key:?}"))
        };
        Ok(EasingDelta {
            stock_p99_cpi: num("stock_p99_cpi")?,
            eased_p99_cpi: num("eased_p99_cpi")?,
        })
    }
}

/// Everything the ledger records about one application's runs.
#[derive(Debug, Clone, PartialEq)]
pub struct AppLedger {
    /// Application short label (`web`, `tpcc`, ...).
    pub app: String,
    /// Requests completed by the standard interrupt-sampled run.
    pub requests: u64,
    /// End-to-end request latency digest, microseconds.
    pub latency_us: QuantileSketch,
    /// Whole-request CPI digest.
    pub cpi: QuantileSketch,
    /// Per-request L2 misses per kilo-instruction digest.
    pub l2_mpki: QuantileSketch,
    /// Observer-effect accounting of the standard (interrupt-sampled)
    /// run, as serialized by `rbv_os::ObserverReport::to_json`.
    pub observer: Json,
    /// Observer-effect accounting of the syscall-sampled run (exercises
    /// the syscall-entry and backup-timer modes).
    pub syscall_observer: Json,
    /// Stock-vs-easing p99 CPI comparison.
    pub easing: EasingDelta,
    /// Kernel observability: per-stage prune counters of the DTW
    /// cascade (`prune.lb_kim` → `prune.length_penalty` →
    /// `prune.lb_keogh` → `prune.early_abandon`) from the online
    /// signature nearest-neighbor scan over the standard run.
    pub kernel: Json,
    /// The chaos matrix outcome, as serialized by
    /// `rbv_faults::ChaosReport::to_json`.
    pub chaos: Json,
    /// The governed-storm outcome (sampling governor, health ladder, and
    /// invariant monitor under the measurement storm), as serialized by
    /// `rbv_faults::GovernorOutcome::to_json`.
    pub guard: Json,
    /// The energy study: the same workload run with the power model on
    /// under stock scheduling, contention easing, and easing with the
    /// guard's power-capping rungs — joules (total and per core),
    /// throttle/DVFS counts, and p99 request CPI per variant.
    pub energy: Json,
}

impl AppLedger {
    /// Serializes the per-app record.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("app".into(), Json::str(self.app.clone())),
            ("requests".into(), Json::Num(self.requests as f64)),
            ("latency_us".into(), self.latency_us.to_json()),
            ("cpi".into(), self.cpi.to_json()),
            ("l2_mpki".into(), self.l2_mpki.to_json()),
            ("observer".into(), self.observer.clone()),
            ("syscall_observer".into(), self.syscall_observer.clone()),
            ("easing".into(), self.easing.to_json()),
            ("kernel".into(), self.kernel.clone()),
            ("chaos".into(), self.chaos.clone()),
            ("guard".into(), self.guard.clone()),
            ("energy".into(), self.energy.clone()),
        ])
    }

    /// Parses a record serialized by [`AppLedger::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed member.
    pub fn from_json(json: &Json) -> Result<AppLedger, String> {
        let member = |key: &str| {
            json.get(key)
                .ok_or_else(|| format!("app ledger: missing {key:?}"))
        };
        let sketch = |key: &str| QuantileSketch::from_json(member(key)?);
        Ok(AppLedger {
            app: member("app")?
                .as_str()
                .ok_or("app ledger: app is not a string")?
                .to_string(),
            requests: member("requests")?
                .as_f64()
                .ok_or("app ledger: requests is not a number")? as u64,
            latency_us: sketch("latency_us")?,
            cpi: sketch("cpi")?,
            l2_mpki: sketch("l2_mpki")?,
            observer: member("observer")?.clone(),
            syscall_observer: member("syscall_observer")?.clone(),
            easing: EasingDelta::from_json(member("easing")?)?,
            kernel: member("kernel")?.clone(),
            chaos: member("chaos")?.clone(),
            guard: member("guard")?.clone(),
            energy: member("energy")?.clone(),
        })
    }
}

/// One benchmark run, ready to serialize or diff.
#[derive(Debug, Clone, PartialEq)]
pub struct RunLedger {
    /// Free-form run label (the bench target, e.g. `all` or `web`).
    pub label: String,
    /// Seed every simulation in the run derived from.
    pub seed: u64,
    /// Whether the run used the reduced `--fast` request counts.
    pub fast: bool,
    /// Per-application records, in collection order.
    pub apps: Vec<AppLedger>,
    /// Optional wall-clock self-profile (`SelfProfiler` stage seconds).
    /// Non-deterministic by nature: excluded unless explicitly requested,
    /// and never compared by the differ.
    pub profile: Option<Json>,
}

impl RunLedger {
    /// Serializes the whole run. With `profile == None` the output is a
    /// pure function of (code, label, seed, fast) — byte-identical across
    /// repeat runs.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("label".into(), Json::str(self.label.clone())),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("fast".into(), Json::Bool(self.fast)),
            (
                "apps".into(),
                Json::Arr(self.apps.iter().map(AppLedger::to_json).collect()),
            ),
        ];
        if let Some(profile) = &self.profile {
            members.push(("profile".into(), profile.clone()));
        }
        Json::Obj(members)
    }

    /// The serialized document text (compact, stable member order).
    pub fn to_string_compact(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Parses a run serialized by [`RunLedger::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed member, or a
    /// schema mismatch.
    pub fn from_json(json: &Json) -> Result<RunLedger, String> {
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("ledger: missing schema")?;
        if schema != SCHEMA {
            return Err(format!("ledger: schema {schema:?} != {SCHEMA:?}"));
        }
        Ok(RunLedger {
            label: json
                .get("label")
                .and_then(Json::as_str)
                .ok_or("ledger: missing label")?
                .to_string(),
            seed: json
                .get("seed")
                .and_then(Json::as_f64)
                .ok_or("ledger: missing seed")? as u64,
            fast: match json.get("fast") {
                Some(Json::Bool(b)) => *b,
                _ => return Err("ledger: missing fast".into()),
            },
            apps: json
                .get("apps")
                .and_then(Json::as_array)
                .ok_or("ledger: missing apps")?
                .iter()
                .map(AppLedger::from_json)
                .collect::<Result<_, _>>()?,
            profile: json.get("profile").cloned(),
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample_app(app: &str, scale: f64) -> AppLedger {
        AppLedger {
            app: app.to_string(),
            requests: 40,
            latency_us: QuantileSketch::of((1..=40).map(|i| i as f64 * 12.5 * scale)),
            cpi: QuantileSketch::of((1..=40).map(|i| 0.8 + (i % 7) as f64 * 0.3 * scale)),
            l2_mpki: QuantileSketch::of((1..=40).map(|i| (i % 5) as f64 * 0.7 * scale)),
            observer: Json::Obj(vec![("overhead_frac".into(), Json::Num(0.004 * scale))]),
            syscall_observer: Json::Obj(vec![("overhead_frac".into(), Json::Num(0.006 * scale))]),
            easing: EasingDelta {
                stock_p99_cpi: 2.5 * scale,
                eased_p99_cpi: 2.3 * scale,
            },
            kernel: Json::Obj(vec![
                ("signatures".into(), Json::Num(40.0)),
                ("penalty".into(), Json::Num(1.5 * scale)),
                (
                    "prune".into(),
                    Json::Obj(vec![
                        ("candidates".into(), Json::Num(780.0)),
                        ("lb_kim".into(), Json::Num(200.0)),
                        ("length_penalty".into(), Json::Num(80.0)),
                        ("lb_keogh".into(), Json::Num(150.0)),
                        ("early_abandon".into(), Json::Num(100.0)),
                        ("full_dp".into(), Json::Num(250.0)),
                        ("pruned_frac".into(), Json::Num(530.0 / 780.0)),
                    ]),
                ),
            ]),
            chaos: Json::Obj(vec![(
                "anomaly".into(),
                Json::Obj(vec![
                    ("precision".into(), Json::Num(0.9)),
                    ("recall".into(), Json::Num(0.85)),
                ]),
            )]),
            guard: Json::Obj(vec![
                ("windows".into(), Json::Num(24.0 * scale)),
                ("budget_breaches".into(), Json::Num(1.0)),
                ("max_breach_streak".into(), Json::Num(1.0)),
                ("overhead_frac".into(), Json::Num(0.004 * scale)),
                ("invariant_violations".into(), Json::Num(0.0)),
            ]),
            energy: Json::Obj(vec![
                (
                    "stock".into(),
                    Json::Obj(vec![
                        ("joules".into(), Json::Num(2.4 * scale)),
                        ("p99_cpi".into(), Json::Num(2.5 * scale)),
                    ]),
                ),
                (
                    "power_easing".into(),
                    Json::Obj(vec![
                        ("joules".into(), Json::Num(1.9 * scale)),
                        ("p99_cpi".into(), Json::Num(2.7 * scale)),
                    ]),
                ),
            ]),
        }
    }

    pub(crate) fn sample_ledger() -> RunLedger {
        RunLedger {
            label: "test".into(),
            seed: 42,
            fast: true,
            apps: vec![sample_app("web", 1.0), sample_app("tpcc", 1.4)],
            profile: None,
        }
    }

    #[test]
    fn round_trips_byte_for_byte() {
        let ledger = sample_ledger();
        let text = ledger.to_string_compact();
        let back = RunLedger::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ledger);
        assert_eq!(back.to_string_compact(), text);
    }

    #[test]
    fn profile_is_optional_and_preserved() {
        let mut ledger = sample_ledger();
        assert!(!ledger.to_string_compact().contains("profile"));
        ledger.profile = Some(Json::Obj(vec![("wall_s.collect".into(), Json::Num(1.25))]));
        let text = ledger.to_string_compact();
        assert!(text.contains("profile"));
        let back = RunLedger::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ledger);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut json = sample_ledger().to_json();
        if let Json::Obj(members) = &mut json {
            members[0].1 = Json::str("rbv-ledger/v0");
        }
        assert!(RunLedger::from_json(&json).is_err());
    }

    #[test]
    fn tail_delta_is_relative_to_stock() {
        let d = EasingDelta {
            stock_p99_cpi: 2.0,
            eased_p99_cpi: 1.9,
        };
        assert!((d.tail_delta_frac() + 0.05).abs() < 1e-12);
        let zero = EasingDelta {
            stock_p99_cpi: 0.0,
            eased_p99_cpi: 1.0,
        };
        assert_eq!(zero.tail_delta_frac(), 0.0);
    }
}
