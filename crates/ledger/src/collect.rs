//! Building a [`RunLedger`] by running the benchmark matrix.
//!
//! Per application, the collector runs:
//!
//! 1. the **standard** interrupt-sampled concurrent run — request
//!    latency/CPI/L2 sketches plus the observer-effect accounting of the
//!    APIC + context-switch sampling modes;
//! 2. a **syscall-sampled** run — accounting for the syscall-entry and
//!    backup-timer modes;
//! 3. a **contention-easing** run against the standard run's stock
//!    baseline — the stock-vs-easing p99 CPI tail delta (§5.2);
//! 4. the **chaos matrix** (`rbv_faults::run_matrix`) — anomaly
//!    precision/recall, degradation, overload, and easing-under-storm;
//! 5. the **governed storm** (`rbv_faults::chaos::governor_storm`) — the
//!    adaptive sampling governor, health ladder, and invariant monitor
//!    under the measurement storm (the ledger's `guard` section).
//!
//! Everything is deterministic in `(app, seed, fast)`; wall-clock stage
//! timings go to the caller's [`SelfProfiler`] and never into the
//! deterministic part of the document.

use rbv_core::stats::percentile;
use rbv_faults::chaos::{governor_storm, run_matrix, ChaosReport, GovernorOutcome};
use rbv_os::{run_simulation, ObserverReport, RbvError, RunResult, SchedulerPolicy, SimConfig};
use rbv_sim::Cycles;
use rbv_telemetry::{Json, SelfProfiler};
use rbv_workloads::{factory_for, AppId};

use crate::document::{AppLedger, EasingDelta, RunLedger};

/// The applications `repro bench --all` covers (the paper's five server
/// applications).
pub const BENCH_APPS: [AppId; 5] = AppId::SERVER_APPS;

/// Stable short label for an application (matches the CLI spelling).
pub fn short_label(app: AppId) -> &'static str {
    match app {
        AppId::WebServer => "web",
        AppId::Tpcc => "tpcc",
        AppId::Tpch => "tpch",
        AppId::Rubis => "rubis",
        AppId::Webwork => "webwork",
        AppId::MbenchSpin => "mbench-spin",
        AppId::MbenchData => "mbench-data",
    }
}

/// Per-application instruction scale (mirrors the chaos harness, keeping
/// the two long-request applications affordable).
fn scale_of(app: AppId) -> f64 {
    match app {
        AppId::Tpch => 0.5,
        AppId::Webwork => 0.1,
        _ => 1.0,
    }
}

/// Requests for the standard run (mirrors the chaos harness sizes).
fn requests_of(app: AppId, fast: bool) -> usize {
    let full = match app {
        AppId::WebServer => 320,
        AppId::Tpcc => 240,
        AppId::Rubis => 200,
        AppId::Tpch => 120,
        AppId::Webwork | AppId::MbenchSpin | AppId::MbenchData => 60,
    };
    if fast {
        (full / 4).max(40)
    } else {
        full
    }
}

/// The standard interrupt-sampled configuration.
fn base_config(app: AppId, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(app.sampling_period_micros());
    cfg.seed = seed;
    cfg
}

fn run(cfg: SimConfig, app: AppId, seed: u64, n: usize) -> Result<RunResult, RbvError> {
    let mut factory = factory_for(app, seed, scale_of(app));
    run_simulation(cfg, factory.as_mut(), n)
}

/// Stage 1: the standard interrupt-sampled run.
fn stage_standard(
    app: AppId,
    seed: u64,
    n: usize,
    profiler: &mut SelfProfiler,
) -> Result<RunResult, RbvError> {
    let label = short_label(app);
    let timer = profiler.stage(format!("{label}.standard"));
    let standard = run(base_config(app, seed), app, seed, n)?;
    profiler.stop(timer);
    Ok(standard)
}

/// Stage 2: the syscall-sampled run.
fn stage_syscall(
    app: AppId,
    seed: u64,
    n: usize,
    profiler: &mut SelfProfiler,
) -> Result<RunResult, RbvError> {
    let label = short_label(app);
    let timer = profiler.stage(format!("{label}.syscall"));
    let period = app.sampling_period_micros();
    let cfg = base_config(app, seed ^ 0x5C).with_syscall_sampling(period / 2, period * 5);
    let syscall = run(cfg, app, seed ^ 0x5C, n / 2)?;
    profiler.stop(timer);
    Ok(syscall)
}

/// Stage 3: contention easing against `standard` as the stock baseline.
/// The high-usage threshold is the 80th percentile of the standard run's
/// per-period L2 miss rates — an exact percentile, because it is a
/// scheduler input, not a reported statistic. This data dependency is why
/// the pooled collector chains stages 1 and 3 into one task.
fn stage_easing(
    app: AppId,
    seed: u64,
    n: usize,
    standard: &RunResult,
    profiler: &mut SelfProfiler,
) -> Result<RunResult, RbvError> {
    let label = short_label(app);
    let timer = profiler.stage(format!("{label}.easing"));
    let mut mpi = Vec::new();
    for r in &standard.completed {
        let (_, mut v) = r
            .timeline
            .weighted_values(rbv_core::series::Metric::L2MissesPerIns);
        mpi.append(&mut v);
    }
    let threshold = percentile(&mpi, 0.8).unwrap_or(0.0);
    let mut cfg = base_config(app, seed);
    cfg.scheduler = SchedulerPolicy::ContentionEasing {
        resched_interval: Cycles::from_millis(5),
        high_usage_threshold: threshold,
        alpha: 0.6,
    };
    cfg.easing_error_gate = Some(0.35);
    let eased = run(cfg, app, seed, n)?;
    profiler.stop(timer);
    Ok(eased)
}

/// Signature cap for the kernel observability scan: enough requests for
/// stable prune rates, bounded so the scan stays a small fraction of the
/// collection cost.
const KERNEL_SIGNATURES: usize = 128;

/// Kernel observability stage (derived from the standard run, no extra
/// simulation): per-request CPI time-series signatures fed through the
/// online nearest-neighbor scan, recording which stage of the DTW prune
/// cascade (LB_Kim → length penalty → LB_Keogh → per-column abandon)
/// settled each candidate — the ledger's `kernel.prune.*` counters.
///
/// The scan mirrors online signature matching: request `i` queries the
/// `i-1` signatures seen before it, so the counters measure the cascade
/// exactly as §4.2's cost concern would meet it in production.
fn stage_kernel(app: AppId, standard: &RunResult, profiler: &mut SelfProfiler) -> Json {
    let label = short_label(app);
    let timer = profiler.stage(format!("{label}.kernel"));
    let signatures: Vec<Vec<f64>> = standard
        .completed
        .iter()
        .take(KERNEL_SIGNATURES)
        .map(|r| r.timeline.weighted_values(rbv_core::series::Metric::Cpi).1)
        .collect();
    let refs: Vec<&[f64]> = signatures.iter().map(Vec::as_slice).collect();
    let penalty = rbv_core::distance::length_penalty(&refs, 4096);
    let mut prune = rbv_core::PruneStats::default();
    for (i, query) in signatures.iter().enumerate().skip(1) {
        let (_, stats) = rbv_core::nearest_series_with_stats(query, &signatures[..i], penalty);
        prune.merge(&stats);
    }
    profiler.stop(timer);
    let num = |v: u64| Json::Num(v as f64);
    Json::Obj(vec![
        ("signatures".into(), num(signatures.len() as u64)),
        ("penalty".into(), Json::Num(penalty)),
        (
            "prune".into(),
            Json::Obj(vec![
                ("candidates".into(), num(prune.candidates)),
                ("lb_kim".into(), num(prune.lb_kim)),
                ("length_penalty".into(), num(prune.length_penalty)),
                ("lb_keogh".into(), num(prune.lb_keogh)),
                ("early_abandon".into(), num(prune.early_abandon)),
                ("full_dp".into(), num(prune.full_dp)),
                ("pruned_frac".into(), Json::Num(prune.pruned_frac())),
            ]),
        ),
    ])
}

/// One variant of the energy study, serialized for the ledger's
/// `energy` member.
fn energy_variant_json(result: &RunResult) -> Json {
    let energy = result
        .stats
        .energy
        .as_ref()
        .unwrap_or_else(|| unreachable!("powered run reports energy"));
    Json::Obj(vec![
        ("joules".into(), Json::Num(energy.total_joules())),
        (
            "core_joules".into(),
            Json::Arr(
                energy
                    .core_uw_cycles
                    .iter()
                    .map(|&c| Json::Num(rbv_os::joules(c)))
                    .collect(),
            ),
        ),
        (
            "throttle_engages".into(),
            Json::Num(energy.throttle_engages as f64),
        ),
        (
            "dvfs_transitions".into(),
            Json::Num(energy.dvfs_transitions as f64),
        ),
        (
            "power_rung_transitions".into(),
            Json::Num(energy.power_rung_transitions as f64),
        ),
        (
            "p99_cpi".into(),
            Json::Num(result.cpi_sketch().p99().unwrap_or(f64::NAN)),
        ),
    ])
}

/// Stage 6: the energy study. The same workload runs three times with
/// the per-core DVFS/power model on — stock scheduling, contention
/// easing, and easing under the guard's power-capping rungs — recording
/// joules (total and per core), throttle/DVFS counts, and p99 request
/// CPI per variant. The capped variant trades tail CPI for joules; the
/// ledger keeps both sides of that trade on the record. The easing
/// threshold derives from the standard run exactly as in stage 3.
fn stage_energy(
    app: AppId,
    seed: u64,
    n: usize,
    standard: &RunResult,
    profiler: &mut SelfProfiler,
) -> Result<Json, RbvError> {
    let label = short_label(app);
    let timer = profiler.stage(format!("{label}.energy"));
    let mut mpi = Vec::new();
    for r in &standard.completed {
        let (_, mut v) = r
            .timeline
            .weighted_values(rbv_core::series::Metric::L2MissesPerIns);
        mpi.append(&mut v);
    }
    let threshold = percentile(&mpi, 0.8).unwrap_or(0.0);
    let variant = |mode: usize| -> Result<RunResult, RbvError> {
        let mut cfg = base_config(app, seed ^ 0xE76);
        cfg.concurrency = 12;
        cfg.power = Some(rbv_os::PowerPolicy::paper_default());
        if mode >= 1 {
            cfg.scheduler = SchedulerPolicy::ContentionEasing {
                resched_interval: Cycles::from_millis(5),
                high_usage_threshold: threshold,
                alpha: 0.6,
            };
            cfg.easing_error_gate = Some(0.35);
        }
        if mode == 2 {
            let governor = rbv_os::GovernorPolicy {
                power_cap: Some(rbv_os::PowerCapPolicy::default()),
                ..rbv_os::GovernorPolicy::default()
            };
            // The ladder supersedes the one-shot gate (as in the
            // governed storm).
            cfg.easing_error_gate = None;
            cfg.governor = Some(governor);
        }
        run(cfg, app, seed ^ 0xE76, n)
    };
    let stock = variant(0)?;
    let easing = variant(1)?;
    let power_easing = variant(2)?;
    profiler.stop(timer);
    Ok(Json::Obj(vec![
        ("stock".into(), energy_variant_json(&stock)),
        ("easing".into(), energy_variant_json(&easing)),
        ("power_easing".into(), energy_variant_json(&power_easing)),
    ]))
}

/// Stage 4: the chaos matrix.
fn stage_chaos(
    app: AppId,
    seed: u64,
    fast: bool,
    profiler: &mut SelfProfiler,
) -> Result<ChaosReport, RbvError> {
    let label = short_label(app);
    let timer = profiler.stage(format!("{label}.chaos"));
    let chaos = run_matrix(app, seed, fast)?;
    profiler.stop(timer);
    Ok(chaos)
}

/// Stage 5: the governed storm — the guard section the gate watches.
fn stage_guard(
    app: AppId,
    seed: u64,
    fast: bool,
    profiler: &mut SelfProfiler,
) -> Result<GovernorOutcome, RbvError> {
    let label = short_label(app);
    let timer = profiler.stage(format!("{label}.guard"));
    let guard = governor_storm(app, seed, requests_of(app, fast))?;
    profiler.stop(timer);
    Ok(guard)
}

/// Folds the six stage outcomes into one [`AppLedger`] record.
#[allow(clippy::too_many_arguments)]
fn assemble(
    app: AppId,
    standard: &RunResult,
    syscall: &RunResult,
    eased: &RunResult,
    kernel: Json,
    chaos: ChaosReport,
    guard: GovernorOutcome,
    energy: Json,
) -> AppLedger {
    AppLedger {
        app: short_label(app).to_string(),
        requests: standard.completed.len() as u64,
        latency_us: standard.latency_sketch(),
        cpi: standard.cpi_sketch(),
        l2_mpki: standard.l2_mpki_sketch(),
        observer: ObserverReport::account(&standard.stats).to_json(),
        syscall_observer: ObserverReport::account(&syscall.stats).to_json(),
        easing: EasingDelta {
            stock_p99_cpi: standard.cpi_sketch().p99().unwrap_or(f64::NAN),
            eased_p99_cpi: eased.cpi_sketch().p99().unwrap_or(f64::NAN),
        },
        kernel,
        chaos: chaos.to_json(),
        guard: guard.to_json(),
        energy,
    }
}

/// Collects the full ledger record for one application.
///
/// # Errors
///
/// Propagates [`RbvError`] from configuration validation.
pub fn collect_app(
    app: AppId,
    seed: u64,
    fast: bool,
    profiler: &mut SelfProfiler,
) -> Result<AppLedger, RbvError> {
    let n = requests_of(app, fast);
    let standard = stage_standard(app, seed, n, profiler)?;
    let syscall = stage_syscall(app, seed, n, profiler)?;
    let eased = stage_easing(app, seed, n, &standard, profiler)?;
    let kernel = stage_kernel(app, &standard, profiler);
    let chaos = stage_chaos(app, seed, fast, profiler)?;
    let guard = stage_guard(app, seed, fast, profiler)?;
    let energy = stage_energy(app, seed, n, &standard, profiler)?;
    Ok(assemble(
        app, &standard, &syscall, &eased, kernel, chaos, guard, energy,
    ))
}

/// Collects a full run ledger over `apps`. Wall-clock stage timings land
/// in `profiler`; they are embedded in the document only when
/// `include_wallclock` is set (and are then ignored by the differ).
///
/// # Errors
///
/// Propagates [`RbvError`] from configuration validation.
pub fn collect(
    apps: &[AppId],
    label: &str,
    seed: u64,
    fast: bool,
    include_wallclock: bool,
    profiler: &mut SelfProfiler,
) -> Result<RunLedger, RbvError> {
    collect_pooled(
        apps,
        label,
        seed,
        fast,
        include_wallclock,
        profiler,
        &rbv_par::Pool::serial(),
    )
}

/// Collects a full run ledger with the independent per-application stages
/// fanned over `pool`.
///
/// Each application contributes four independent tasks — {standard run +
/// easing run} (chained: easing's scheduler threshold derives from the
/// standard run), syscall run, chaos matrix, governed storm — every one a
/// deterministic simulation in `(app, seed, fast)`. Results are collected
/// in submission order and assembled in application order, so the
/// resulting document serializes **byte-identically** at any thread count
/// ([`rbv_par`]'s ordered-collect contract). Worker stage timings are
/// absorbed into `profiler` in the same fixed order; wall-clock values
/// are the only thread-count-dependent output and are embedded only when
/// `include_wallclock` is set (and are then ignored by the differ).
///
/// # Errors
///
/// Propagates the first [`RbvError`] in task-submission order
/// (deterministic regardless of which worker hit it first).
pub fn collect_pooled(
    apps: &[AppId],
    label: &str,
    seed: u64,
    fast: bool,
    include_wallclock: bool,
    profiler: &mut SelfProfiler,
    pool: &rbv_par::Pool,
) -> Result<RunLedger, RbvError> {
    /// One task's payload, tagged for in-order reassembly.
    enum Payload {
        StandardEasingKernelEnergy(Box<(RunResult, RunResult, Json, Json)>),
        Syscall(Box<RunResult>),
        Chaos(Box<ChaosReport>),
        Guard(Box<GovernorOutcome>),
    }
    const TASKS_PER_APP: usize = 4;

    let mut tasks = Vec::with_capacity(apps.len() * TASKS_PER_APP);
    for &app in apps {
        for kind in 0..TASKS_PER_APP {
            tasks.push((app, kind));
        }
    }
    let results = pool.ordered_map(&tasks, |&(app, kind)| {
        let mut worker = SelfProfiler::new();
        let n = requests_of(app, fast);
        let payload = match kind {
            0 => stage_standard(app, seed, n, &mut worker).and_then(|standard| {
                stage_easing(app, seed, n, &standard, &mut worker).and_then(|eased| {
                    let kernel = stage_kernel(app, &standard, &mut worker);
                    stage_energy(app, seed, n, &standard, &mut worker).map(|energy| {
                        Payload::StandardEasingKernelEnergy(Box::new((
                            standard, eased, kernel, energy,
                        )))
                    })
                })
            }),
            1 => stage_syscall(app, seed, n, &mut worker).map(|r| Payload::Syscall(Box::new(r))),
            2 => stage_chaos(app, seed, fast, &mut worker).map(|c| Payload::Chaos(Box::new(c))),
            _ => stage_guard(app, seed, fast, &mut worker).map(|g| Payload::Guard(Box::new(g))),
        };
        (worker, payload)
    });

    // Absorb worker profilers and reassemble records in submission order.
    let mut records = Vec::with_capacity(apps.len());
    let mut results = results.into_iter();
    for &app in apps {
        let mut standard_easing = None;
        let mut syscall = None;
        let mut chaos = None;
        let mut guard = None;
        for _ in 0..TASKS_PER_APP {
            let (worker, payload) = results
                .next()
                .unwrap_or_else(|| unreachable!("one result per submitted task"));
            profiler.absorb(worker);
            match payload? {
                Payload::StandardEasingKernelEnergy(b) => standard_easing = Some(*b),
                Payload::Syscall(b) => syscall = Some(*b),
                Payload::Chaos(b) => chaos = Some(*b),
                Payload::Guard(b) => guard = Some(*b),
            }
        }
        let (standard, eased, kernel, energy) = standard_easing
            .unwrap_or_else(|| unreachable!("standard+easing task always submitted"));
        let syscall = syscall.unwrap_or_else(|| unreachable!("syscall task always submitted"));
        let chaos = chaos.unwrap_or_else(|| unreachable!("chaos task always submitted"));
        let guard = guard.unwrap_or_else(|| unreachable!("guard task always submitted"));
        records.push(assemble(
            app, &standard, &syscall, &eased, kernel, chaos, guard, energy,
        ));
    }
    let profile = include_wallclock.then(|| {
        Json::Obj(
            profiler
                .stages()
                .iter()
                .map(|(name, secs)| (format!("wall_s.{name}"), Json::Num(*secs)))
                .collect(),
        )
    });
    Ok(RunLedger {
        label: label.to_string(),
        seed,
        fast,
        apps: records,
        profile,
    })
}
