//! Building a [`RunLedger`] by running the benchmark matrix.
//!
//! Per application, the collector runs:
//!
//! 1. the **standard** interrupt-sampled concurrent run — request
//!    latency/CPI/L2 sketches plus the observer-effect accounting of the
//!    APIC + context-switch sampling modes;
//! 2. a **syscall-sampled** run — accounting for the syscall-entry and
//!    backup-timer modes;
//! 3. a **contention-easing** run against the standard run's stock
//!    baseline — the stock-vs-easing p99 CPI tail delta (§5.2);
//! 4. the **chaos matrix** (`rbv_faults::run_matrix`) — anomaly
//!    precision/recall, degradation, overload, and easing-under-storm;
//! 5. the **governed storm** (`rbv_faults::chaos::governor_storm`) — the
//!    adaptive sampling governor, health ladder, and invariant monitor
//!    under the measurement storm (the ledger's `guard` section).
//!
//! Everything is deterministic in `(app, seed, fast)`; wall-clock stage
//! timings go to the caller's [`SelfProfiler`] and never into the
//! deterministic part of the document.

use rbv_core::stats::percentile;
use rbv_faults::chaos::{governor_storm, run_matrix};
use rbv_os::{run_simulation, ObserverReport, RbvError, RunResult, SchedulerPolicy, SimConfig};
use rbv_sim::Cycles;
use rbv_telemetry::{Json, SelfProfiler};
use rbv_workloads::{factory_for, AppId};

use crate::document::{AppLedger, EasingDelta, RunLedger};

/// The applications `repro bench --all` covers (the paper's five server
/// applications).
pub const BENCH_APPS: [AppId; 5] = AppId::SERVER_APPS;

/// Stable short label for an application (matches the CLI spelling).
pub fn short_label(app: AppId) -> &'static str {
    match app {
        AppId::WebServer => "web",
        AppId::Tpcc => "tpcc",
        AppId::Tpch => "tpch",
        AppId::Rubis => "rubis",
        AppId::Webwork => "webwork",
        AppId::MbenchSpin => "mbench-spin",
        AppId::MbenchData => "mbench-data",
    }
}

/// Per-application instruction scale (mirrors the chaos harness, keeping
/// the two long-request applications affordable).
fn scale_of(app: AppId) -> f64 {
    match app {
        AppId::Tpch => 0.5,
        AppId::Webwork => 0.1,
        _ => 1.0,
    }
}

/// Requests for the standard run (mirrors the chaos harness sizes).
fn requests_of(app: AppId, fast: bool) -> usize {
    let full = match app {
        AppId::WebServer => 320,
        AppId::Tpcc => 240,
        AppId::Rubis => 200,
        AppId::Tpch => 120,
        AppId::Webwork | AppId::MbenchSpin | AppId::MbenchData => 60,
    };
    if fast {
        (full / 4).max(40)
    } else {
        full
    }
}

/// The standard interrupt-sampled configuration.
fn base_config(app: AppId, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(app.sampling_period_micros());
    cfg.seed = seed;
    cfg
}

fn run(cfg: SimConfig, app: AppId, seed: u64, n: usize) -> Result<RunResult, RbvError> {
    let mut factory = factory_for(app, seed, scale_of(app));
    run_simulation(cfg, factory.as_mut(), n)
}

/// Collects the full ledger record for one application.
///
/// # Errors
///
/// Propagates [`RbvError`] from configuration validation.
pub fn collect_app(
    app: AppId,
    seed: u64,
    fast: bool,
    profiler: &mut SelfProfiler,
) -> Result<AppLedger, RbvError> {
    let label = short_label(app);
    let n = requests_of(app, fast);

    // 1. Standard run: sketches + APIC/context-switch accounting.
    let timer = profiler.stage(format!("{label}.standard"));
    let standard = run(base_config(app, seed), app, seed, n)?;
    profiler.stop(timer);

    // 2. Syscall-sampled run: syscall-entry/backup-timer accounting.
    let timer = profiler.stage(format!("{label}.syscall"));
    let period = app.sampling_period_micros();
    let cfg = base_config(app, seed ^ 0x5C).with_syscall_sampling(period / 2, period * 5);
    let syscall = run(cfg, app, seed ^ 0x5C, n / 2)?;
    profiler.stop(timer);

    // 3. Contention easing against the standard run as stock baseline.
    // The high-usage threshold is the 80th percentile of the standard
    // run's per-period L2 miss rates — an exact percentile, because it is
    // a scheduler input, not a reported statistic.
    let timer = profiler.stage(format!("{label}.easing"));
    let mut mpi = Vec::new();
    for r in &standard.completed {
        let (_, mut v) = r
            .timeline
            .weighted_values(rbv_core::series::Metric::L2MissesPerIns);
        mpi.append(&mut v);
    }
    let threshold = percentile(&mpi, 0.8).unwrap_or(0.0);
    let mut cfg = base_config(app, seed);
    cfg.scheduler = SchedulerPolicy::ContentionEasing {
        resched_interval: Cycles::from_millis(5),
        high_usage_threshold: threshold,
        alpha: 0.6,
    };
    cfg.easing_error_gate = Some(0.35);
    let eased = run(cfg, app, seed, n)?;
    profiler.stop(timer);

    // 4. Chaos matrix.
    let timer = profiler.stage(format!("{label}.chaos"));
    let chaos = run_matrix(app, seed, fast)?;
    profiler.stop(timer);

    // 5. Governed storm: the guard section the regression gate watches.
    let timer = profiler.stage(format!("{label}.guard"));
    let guard = governor_storm(app, seed, requests_of(app, fast))?;
    profiler.stop(timer);

    Ok(AppLedger {
        app: label.to_string(),
        requests: standard.completed.len() as u64,
        latency_us: standard.latency_sketch(),
        cpi: standard.cpi_sketch(),
        l2_mpki: standard.l2_mpki_sketch(),
        observer: ObserverReport::account(&standard.stats).to_json(),
        syscall_observer: ObserverReport::account(&syscall.stats).to_json(),
        easing: EasingDelta {
            stock_p99_cpi: standard.cpi_sketch().p99().unwrap_or(f64::NAN),
            eased_p99_cpi: eased.cpi_sketch().p99().unwrap_or(f64::NAN),
        },
        chaos: chaos.to_json(),
        guard: guard.to_json(),
    })
}

/// Collects a full run ledger over `apps`. Wall-clock stage timings land
/// in `profiler`; they are embedded in the document only when
/// `include_wallclock` is set (and are then ignored by the differ).
///
/// # Errors
///
/// Propagates [`RbvError`] from configuration validation.
pub fn collect(
    apps: &[AppId],
    label: &str,
    seed: u64,
    fast: bool,
    include_wallclock: bool,
    profiler: &mut SelfProfiler,
) -> Result<RunLedger, RbvError> {
    let mut records = Vec::with_capacity(apps.len());
    for &app in apps {
        records.push(collect_app(app, seed, fast, profiler)?);
    }
    let profile = include_wallclock.then(|| {
        Json::Obj(
            profiler
                .stages()
                .iter()
                .map(|(name, secs)| (format!("wall_s.{name}"), Json::Num(*secs)))
                .collect(),
        )
    });
    Ok(RunLedger {
        label: label.to_string(),
        seed,
        fast,
        apps: records,
        profile,
    })
}
