//! End-to-end checks of the ledger pipeline: collection is deterministic
//! byte-for-byte, a document diffs clean against itself, and a perturbed
//! tail quantile is flagged by name with a nonempty explanation.

use rbv_ledger::{collect, diff_documents, RunLedger};
use rbv_telemetry::{Json, QuantileSketch, SelfProfiler};
use rbv_workloads::AppId;

fn collect_once(wallclock: bool) -> RunLedger {
    let mut profiler = SelfProfiler::new();
    collect(
        &[AppId::Webwork],
        "gate-test",
        42,
        true,
        wallclock,
        &mut profiler,
    )
    .expect("collection succeeds")
}

#[test]
fn repeat_collection_is_byte_identical_and_diffs_clean() {
    let a = collect_once(false);
    let b = collect_once(false);
    let text_a = a.to_string_compact();
    let text_b = b.to_string_compact();
    assert_eq!(text_a, text_b, "same seed must serialize byte-identically");

    let parsed = Json::parse(&text_a).expect("document parses");
    let report = diff_documents(&parsed, &parsed, None).expect("diff runs");
    assert!(report.passed(), "self-diff must be clean: {report:?}");
    assert!(report.compared > 20, "expected a rich metric set");
}

#[test]
fn wallclock_profile_is_present_only_on_request_and_never_diffed() {
    let with = collect_once(true);
    let without = collect_once(false);
    assert!(with.profile.is_some());
    assert!(without.profile.is_none());

    // The deterministic parts still diff clean against each other even
    // though one document carries wall-clock timings.
    let a = Json::parse(&with.to_string_compact()).unwrap();
    let b = Json::parse(&without.to_string_compact()).unwrap();
    let report = diff_documents(&a, &b, None).expect("diff runs");
    assert!(report.passed(), "profile must be ignored: {report:?}");
}

#[test]
fn perturbed_tail_cpi_fails_the_gate_with_a_named_violation() {
    let baseline = collect_once(false);
    let mut candidate = baseline.clone();
    // Regress the candidate's CPI tail by 5% — outside the sketch band.
    let shifted: Vec<f64> = {
        let sketch = &candidate.apps[0].cpi;
        let p50 = sketch.p50().unwrap();
        (0..sketch.count())
            .map(|i| p50 * 1.05 * (1.0 + i as f64 * 1e-6))
            .collect()
    };
    candidate.apps[0].cpi = QuantileSketch::of(shifted.iter().copied());

    let base = Json::parse(&baseline.to_string_compact()).unwrap();
    let cand = Json::parse(&candidate.to_string_compact()).unwrap();
    let report = diff_documents(&base, &cand, None).expect("diff runs");
    assert!(!report.passed(), "a 5% tail shift must fail the gate");
    let named: Vec<&str> = report
        .violations
        .iter()
        .map(|v| v.metric.as_str())
        .collect();
    assert!(
        named.iter().any(|m| m.starts_with("webwork.cpi.")),
        "violations must name the regressed metric, got {named:?}"
    );
    for v in &report.violations {
        assert!(v.baseline.is_finite() && v.candidate.is_finite());
        assert!(v.tolerance >= 0.0);
    }
}

#[test]
fn pooled_collection_is_byte_identical_to_serial() {
    let serial = collect_once(false).to_string_compact();
    for threads in [2, 4] {
        let mut profiler = SelfProfiler::new();
        let pooled = rbv_ledger::collect_pooled(
            &[AppId::Webwork],
            "gate-test",
            42,
            true,
            false,
            &mut profiler,
            &rbv_par::Pool::new(threads),
        )
        .expect("pooled collection succeeds")
        .to_string_compact();
        assert_eq!(serial, pooled, "ledger diverged at {threads} threads");
    }
}
