//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the minimal surface its benches use: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! This is a *smoke-bench* harness, not a statistics engine: each
//! benchmark runs a short warmup, then a fixed measurement batch, and
//! prints mean wall-clock time per iteration. It keeps `cargo bench`
//! compiling and producing order-of-magnitude numbers without upstream
//! criterion's sampling, outlier analysis, or HTML reports.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Times closures over a fixed iteration batch.
#[derive(Debug)]
pub struct Bencher {
    /// Mean nanoseconds per iteration of the measured batch.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`, storing mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup, then scale the batch so the measurement takes ~10ms.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed().as_millis() < 2 || warm_iters < 3 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let batch = ((10_000_000.0 / per_iter.max(1.0)) as u64).clamp(3, 1_000_000);

        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.last_ns_per_iter = start.elapsed().as_nanos() as f64 / batch as f64;
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        last_ns_per_iter: 0.0,
    };
    f(&mut b);
    println!("bench {label:<48} {:>12}/iter", human(b.last_ns_per_iter));
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the fixed-batch harness ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the fixed-batch harness ignores it.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` with the given `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a plain name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks `f` as a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, |b| f(b));
        self
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs_and_times() {
        benches();
    }

    #[test]
    fn human_units() {
        assert!(human(12.0).ends_with("ns"));
        assert!(human(12_000.0).ends_with("µs"));
        assert!(human(12_000_000.0).ends_with("ms"));
        assert!(human(12_000_000_000.0).ends_with(" s"));
    }
}
