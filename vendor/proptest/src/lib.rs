//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of proptest's API its property tests use: the [`proptest!`]
//! macro, range / tuple / collection / sample strategies, `prop_map`,
//! `prop_oneof!`, and the `prop_assert*` family.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * values are drawn uniformly — there is no edge-case bias and **no
//!   shrinking**; a failing case panics with the generated inputs left to
//!   inspection via the assertion message;
//! * case generation is deterministic per test name, so failures
//!   reproduce run-to-run without a persistence file.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration and the deterministic case generator.

    /// Proptest run configuration (only the fields this workspace uses).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (the test name).
        pub fn deterministic(label: &str) -> TestRng {
            let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in label.bytes() {
                state ^= u64::from(b);
                state = state.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn uniform(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, span)`; `span` must be nonzero.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            let threshold = span.wrapping_neg() % span;
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (span as u128);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }
    }

    /// Failure of one generated case (compatibility placeholder).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (for heterogeneous unions).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(move |rng: &mut TestRng| self.new_value(rng)),
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        #[allow(clippy::type_complexity)]
        inner: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.inner)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among equally weighted boxed strategies
    /// (the expansion of [`prop_oneof!`](crate::prop_oneof)).
    #[derive(Clone)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be nonempty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                    if span == u64::MAX {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + (self.end - self.start) * rng.uniform();
            v.min(self.end - (self.end - self.start) * 1e-16)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start() + (self.end() - self.start()) * rng.uniform()
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice of one element of `options` (cloned).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! Everything a proptest-based test file needs.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced access to the strategy modules (`prop::collection::vec`,
    /// `prop::sample::select`, `prop::bool::ANY`), as in upstream proptest.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)*
                // The closure gives `prop_assume!` an early exit per case.
                #[allow(clippy::redundant_closure_call)]
                (|| -> () { $body })();
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current generated case when its inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(
            x in 0.0f64..10.0,
            n in 1usize..16,
            b in prop::bool::ANY,
        ) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..16).contains(&n));
            let _ = b;
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            pairs in prop::collection::vec((0.0f64..1.0, 0u8..5), 0..20),
            mut tagged in (1u64..100).prop_map(|v| v * 2),
        ) {
            prop_assert!(pairs.len() < 20);
            for (f, i) in &pairs {
                prop_assert!((0.0..1.0).contains(f));
                prop_assert!(*i < 5);
            }
            prop_assert!(tagged % 2 == 0 && tagged < 200);
            tagged += 1;
            prop_assert!(tagged % 2 == 1);
        }

        #[test]
        fn oneof_select_and_assume(
            pick in prop_oneof![Just(1u32), Just(2u32), 10u32..20],
            chosen in prop::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assume!(pick != 2);
            prop_assert!(pick == 1 || (10..20).contains(&pick));
            prop_assert!(["a", "b", "c"].contains(&chosen));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
