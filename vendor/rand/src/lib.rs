//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors the small slice of the `rand` 0.8 API it actually
//! uses: the [`RngCore`] / [`Rng`] traits, uniform range sampling over the
//! primitive numeric types, and the [`Error`] type. All generators in this
//! workspace are deterministic (`rbv_sim::SimRng`); nothing here needs
//! OS entropy, `thread_rng`, or the distribution zoo.
//!
//! Algorithms are *not* bit-compatible with upstream `rand` — the
//! workspace pins its own xoshiro256\*\* stream and only relies on
//! uniformity, which the implementations below provide (53-bit mantissa
//! floats, Lemire-style widening-multiply integers with rejection).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type of fallible RNG operations (never produced by the
/// deterministic generators in this workspace).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Wraps a static message.
    pub fn new(msg: &'static str) -> Error {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, as in `rand` 0.8.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, as upstream.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types [`Rng::gen_range`] can sample uniformly.
///
/// A single generic [`SampleRange`] impl per range shape (mirroring
/// upstream `rand`) keeps type inference working for unsuffixed literals
/// like `gen_range(0..1000) < some_u32`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform over `[lo, hi]` when `inclusive`, else `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    if span == u64::MAX {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    lo.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by widening multiply with rejection
/// (Lemire's method); `span` must be nonzero.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let u = <$t as Standard>::draw(rng);
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    lo + (hi - lo) * u
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let v = lo + (hi - lo) * u;
                    // Floating rounding can land exactly on `hi`; clamp open.
                    if v >= hi {
                        <$t>::max(lo, prev_down(hi))
                    } else {
                        v
                    }
                }
            }
        }
    )*};
}

float_uniform!(f64);
float_uniform!(f32);

/// The largest float strictly below `x` (for open upper bounds).
fn prev_down<T: FloatBits>(x: T) -> T {
    T::prev_down(x)
}

/// Bit-level helper so the float range code stays generic.
pub trait FloatBits: Copy {
    /// Next representable value toward negative infinity.
    fn prev_down(self) -> Self;
}

impl FloatBits for f64 {
    fn prev_down(self) -> f64 {
        if self <= 0.0 {
            return self; // sufficient for this workspace's positive ranges
        }
        f64::from_bits(self.to_bits() - 1)
    }
}

impl FloatBits for f32 {
    fn prev_down(self) -> f32 {
        if self <= 0.0 {
            return self;
        }
        f32::from_bits(self.to_bits() - 1)
    }
}

/// User-facing random value methods, as in `rand` 0.8.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SplitMix(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(y > 0.0 && y < 1.0);
            let z: f64 = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&z));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = SplitMix(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
            let w: u64 = rng.gen_range(1..=9u64);
            assert!((1..=9).contains(&w));
            let q: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&q));
        }
        assert!(seen.iter().all(|&s| s), "all values reachable");
    }

    #[test]
    fn gen_f64_is_roughly_uniform() {
        let mut rng = SplitMix(3);
        let mean: f64 = (0..20_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }
}
