//! Offline stand-in for the `rand_distr` crate: the [`Distribution`] trait
//! and the [`Zipf`] distribution, which are the only pieces this workspace
//! uses (Zipf-popular working sets in `rbv-mem::trace` and Zipf problem
//! popularity in the WeBWorK workload model).
//!
//! [`Zipf`] uses the rejection-inversion sampler of Hörmann & Derflinger
//! ("Rejection-inversion to generate variates from monotone discrete
//! distributions", 1996) — the same algorithm upstream `rand_distr` uses —
//! so sampling cost is O(1) regardless of the element count.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};

/// Types that produce values of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`Zipf`] distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfError {
    /// The element count must be at least one.
    NTooSmall,
    /// The exponent must be nonnegative and finite.
    STooSmall,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::NTooSmall => f.write_str("Zipf needs at least one element"),
            ZipfError::STooSmall => f.write_str("Zipf exponent must be finite and >= 0"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// The Zipf distribution over ranks `1..=n` with weight `rank^-s`.
///
/// Samples are returned as `f64` holding an exact integer rank, matching
/// the upstream `rand_distr::Zipf<f64>` convention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf<F> {
    n: F,
    s: F,
    /// `H(1.5) - h(1)`, the left edge of the inversion domain.
    h_x1: F,
    /// `H(n + 0.5)`, the right edge.
    h_n: F,
    /// Acceptance shortcut threshold `2 - H_inv(H(2.5) - h(2))`.
    shortcut: F,
}

impl Zipf<f64> {
    /// Creates a Zipf distribution over `n` elements with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns an error when `n == 0` or `s` is negative or non-finite.
    pub fn new(n: u64, s: f64) -> Result<Zipf<f64>, ZipfError> {
        if n == 0 {
            return Err(ZipfError::NTooSmall);
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ZipfError::STooSmall);
        }
        let nf = n as f64;
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(nf + 0.5, s);
        let shortcut = 2.0 - h_integral_inv(h_integral(2.5, s) - h(2.0, s), s);
        Ok(Zipf {
            n: nf,
            s,
            h_x1,
            h_n,
            shortcut,
        })
    }
}

/// `H(x) = ∫ t^-s dt`, i.e. `(x^(1-s) - 1) / (1-s)`, continued as `ln x`
/// at `s = 1`.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    if (1.0 - s).abs() < 1e-12 {
        log_x
    } else {
        ((1.0 - s) * log_x).exp_m1() / (1.0 - s)
    }
}

/// Inverse of [`h_integral`].
fn h_integral_inv(v: f64, s: f64) -> f64 {
    if (1.0 - s).abs() < 1e-12 {
        v.exp()
    } else {
        let t = (v * (1.0 - s)).max(-1.0 + 1e-15);
        (t.ln_1p() / (1.0 - s)).exp()
    }
}

/// The weight function `h(x) = x^-s`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.n <= 1.0 {
            return 1.0;
        }
        loop {
            // Uniform over (H(1.5) - h(1), H(n + 0.5)].
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = h_integral_inv(u, self.s);
            let k = (x + 0.5).floor().clamp(1.0, self.n);
            if k - x <= self.shortcut || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, 0.9).is_ok());
    }

    #[test]
    fn samples_are_integer_ranks_in_range() {
        let mut rng = SplitMix(7);
        for s in [0.0, 0.5, 0.9, 1.0, 1.3] {
            let z = Zipf::new(100, s).unwrap();
            for _ in 0..2_000 {
                let v = z.sample(&mut rng);
                assert_eq!(v, v.floor(), "integer rank");
                assert!((1.0..=100.0).contains(&v), "v={v} s={s}");
            }
        }
    }

    #[test]
    fn rank_frequencies_follow_power_law() {
        // With s = 1, P(1)/P(2) = 2; check the empirical ratio roughly.
        let z = Zipf::new(50, 1.0).unwrap();
        let mut rng = SplitMix(11);
        let mut counts = [0usize; 51];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((1.7..2.3).contains(&ratio), "P(1)/P(2) = {ratio}");
        let ratio4 = counts[1] as f64 / counts[4] as f64;
        assert!((3.3..4.7).contains(&ratio4), "P(1)/P(4) = {ratio4}");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0).unwrap();
        let mut rng = SplitMix(13);
        let mut counts = [0usize; 11];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts[1..=10] {
            let p = c as f64 / 100_000.0;
            assert!((0.08..0.12).contains(&p), "p={p}");
        }
    }

    #[test]
    fn single_element_always_one() {
        let z = Zipf::new(1, 0.9).unwrap();
        let mut rng = SplitMix(17);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1.0);
        }
    }
}
