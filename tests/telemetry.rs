//! End-to-end telemetry checks: a traced TPC-C run exports valid
//! Perfetto (Chrome trace-event) JSON, and tracing is observation-only —
//! the run's results are bit-identical with the sink on or off.

use std::collections::HashMap;

use rbv_bench::tracecmd;
use request_behavior_variations::os::{run_simulation, SimConfig};
use request_behavior_variations::telemetry::{Json, PerfettoTrace};
use request_behavior_variations::workloads::AppId;

fn traced_tpcc() -> (tracecmd::TraceOutcome, Json) {
    let outcome = tracecmd::run_traced(AppId::Tpcc, true, 1).expect("standard config is valid");
    let trace = PerfettoTrace::from_events(&outcome.events, outcome.cores);
    let parsed = Json::parse(&trace.to_json_string()).expect("exported JSON parses back");
    (outcome, parsed)
}

fn trace_events(parsed: &Json) -> &[Json] {
    parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array")
}

#[test]
fn perfetto_export_is_valid_and_balanced() {
    let (outcome, parsed) = traced_tpcc();
    let events = trace_events(&parsed);
    assert!(!events.is_empty());

    // Duration slices balance: globally and per track (depth never
    // negative in emission order).
    let mut depth: HashMap<i64, i64> = HashMap::new();
    let (mut b, mut e) = (0u64, 0u64);
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        let tid = ev.get("tid").and_then(Json::as_f64).expect("tid") as i64;
        match ph {
            "B" => {
                b += 1;
                *depth.entry(tid).or_insert(0) += 1;
            }
            "E" => {
                e += 1;
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "unbalanced E on tid {tid}");
            }
            _ => {}
        }
    }
    assert_eq!(b, e, "B/E slice counts must balance");
    assert!(depth.values().all(|&d| d == 0), "open slices at end");

    // One async request span per *completed* request, opened and closed.
    let spans = |ph: &str| {
        events
            .iter()
            .filter(|ev| {
                ev.get("ph").and_then(Json::as_str) == Some(ph)
                    && ev.get("cat").and_then(Json::as_str) == Some("request")
            })
            .count()
    };
    assert_eq!(spans("b"), outcome.result.completed.len());
    assert_eq!(spans("e"), outcome.result.completed.len());

    // Timestamps are monotone per track in array order.
    let mut last_ts: HashMap<i64, f64> = HashMap::new();
    for ev in events {
        let Some(ts) = ev.get("ts").and_then(Json::as_f64) else {
            continue;
        };
        let tid = ev.get("tid").and_then(Json::as_f64).expect("tid") as i64;
        let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        assert!(ts >= *prev, "ts regressed on tid {tid}: {ts} < {prev}");
        *prev = ts;
    }
}

#[test]
fn tracing_is_observation_only() {
    // The traced run and a plain `run_simulation` at the same seed and
    // configuration must produce identical results: the sink must not
    // perturb scheduling, sampling, or any RNG stream.
    let outcome = tracecmd::run_traced(AppId::Tpcc, true, 5).expect("standard config is valid");
    let mut cfg =
        SimConfig::paper_default().with_interrupt_sampling(AppId::Tpcc.sampling_period_micros());
    cfg.seed = 5;
    let mut factory = rbv_bench::harness::standard_factory(AppId::Tpcc, 5);
    let untraced = run_simulation(cfg, factory.as_mut(), outcome.result.completed.len())
        .expect("valid config");
    assert_eq!(outcome.result.stats, untraced.stats);
    assert_eq!(outcome.result.completed, untraced.completed);
    assert_eq!(outcome.result.transitions, untraced.transitions);
    assert_eq!(outcome.result.total_time, untraced.total_time);
}

#[test]
fn metrics_sidecars_carry_the_seed() {
    let outcome = tracecmd::run_traced(AppId::Tpcc, true, 42).expect("standard config is valid");
    let dir = std::env::temp_dir();
    let json_path = dir.join("rbv_metrics_test.json");
    let csv_path = dir.join("rbv_metrics_test.csv");
    tracecmd::write_metrics(&outcome, &json_path).expect("write json");
    tracecmd::write_metrics(&outcome, &csv_path).expect("write csv");

    let parsed = Json::parse(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
    assert_eq!(parsed.get("run.seed").and_then(Json::as_f64), Some(42.0));
    assert!(parsed.get("selfprofile.wall_ms.total").is_some());

    let csv = std::fs::read_to_string(&csv_path).unwrap();
    assert!(csv.lines().next().unwrap().starts_with("name,"));
    assert!(csv.lines().any(|l| l.starts_with("run.seed,")));
}
