//! Cross-crate property-based tests (proptest) of the invariants DESIGN.md
//! commits to.

use proptest::prelude::*;

use request_behavior_variations::core::distance::{
    dtw_banded, dtw_distance, dtw_distance_with_penalty, l1_distance, levenshtein,
};
use request_behavior_variations::core::predict::{Ewma, Predictor, VaEwma};
use request_behavior_variations::core::series::{Metric, SamplePeriod, Timeline};
use request_behavior_variations::core::stats::{coefficient_of_variation, percentile};
use request_behavior_variations::mem::model::{miss_ratio, proportional_fill};
use request_behavior_variations::mem::{MachineSpec, SegmentProfile};

fn series_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..10.0, 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- distances -------------------------------------------------------

    #[test]
    fn distances_are_symmetric_with_zero_identity(
        x in series_strategy(40),
        y in series_strategy(40),
        penalty in 0.0f64..20.0,
    ) {
        prop_assert!((l1_distance(&x, &y, penalty) - l1_distance(&y, &x, penalty)).abs() < 1e-9);
        prop_assert!(l1_distance(&x, &x, penalty).abs() < 1e-9);
        let d_xy = dtw_distance_with_penalty(&x, &y, penalty);
        let d_yx = dtw_distance_with_penalty(&y, &x, penalty);
        prop_assert!((d_xy - d_yx).abs() < 1e-9);
        prop_assert!(dtw_distance_with_penalty(&x, &x, penalty).abs() < 1e-9);
        prop_assert!(d_xy >= 0.0);
    }

    #[test]
    fn dtw_never_exceeds_l1_on_equal_lengths(
        pairs in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..40),
        penalty in 0.0f64..20.0,
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        // The synchronized path is one valid warp path.
        prop_assert!(
            dtw_distance_with_penalty(&x, &y, penalty) <= l1_distance(&x, &y, penalty) + 1e-9
        );
        // More penalty never decreases the distance.
        prop_assert!(
            dtw_distance_with_penalty(&x, &y, penalty)
                >= dtw_distance(&x, &y) - 1e-9
        );
    }

    #[test]
    fn banded_dtw_upper_bounds_full_dtw(
        x in series_strategy(30),
        y in series_strategy(30),
        penalty in 0.0f64..5.0,
        band in 1usize..8,
    ) {
        prop_assume!(!x.is_empty() && !y.is_empty());
        let full = dtw_distance_with_penalty(&x, &y, penalty);
        let banded = dtw_banded(&x, &y, penalty, band);
        prop_assert!(banded >= full - 1e-9, "banded {banded} < full {full}");
        let wide = dtw_banded(&x, &y, penalty, x.len() + y.len());
        prop_assert!((wide - full).abs() < 1e-9);
    }

    #[test]
    fn levenshtein_is_a_metric(
        a in prop::collection::vec(0u8..5, 0..24),
        b in prop::collection::vec(0u8..5, 0..24),
        c in prop::collection::vec(0u8..5, 0..24),
    ) {
        let dab = levenshtein(&a, &b);
        prop_assert_eq!(dab, levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert!(dab <= levenshtein(&a, &c) + levenshtein(&c, &b));
        // Bounded by the longer length.
        prop_assert!(dab <= a.len().max(b.len()));
        prop_assert!(dab >= a.len().abs_diff(b.len()));
    }

    // ---- statistics --------------------------------------------------------

    #[test]
    fn cov_is_scale_invariant_and_nonnegative(
        data in prop::collection::vec((0.1f64..100.0, 0.1f64..100.0), 1..30),
        scale in 0.1f64..50.0,
    ) {
        let lengths: Vec<f64> = data.iter().map(|d| d.0).collect();
        let values: Vec<f64> = data.iter().map(|d| d.1).collect();
        let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
        let a = coefficient_of_variation(&lengths, &values).unwrap();
        let b = coefficient_of_variation(&lengths, &scaled).unwrap();
        prop_assert!(a >= 0.0);
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a));
    }

    #[test]
    fn percentiles_are_monotone(
        mut values in prop::collection::vec(-1e6f64..1e6, 1..50),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = percentile(&values, lo).unwrap();
        let b = percentile(&values, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
        values.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert!(a >= values[0] - 1e-9 && b <= values[values.len() - 1] + 1e-9);
    }

    // ---- predictors ---------------------------------------------------------

    #[test]
    fn vaewma_equals_ewma_on_unit_durations(
        values in prop::collection::vec(0.0f64..100.0, 1..40),
        alpha in 0.0f64..1.0,
    ) {
        let mut va = VaEwma::new(alpha, 1.0);
        let mut basic = Ewma::new(alpha);
        for &v in &values {
            va.observe(v, 1.0);
            basic.observe(v, 1.0);
            let (a, b) = (va.predict().unwrap(), basic.predict().unwrap());
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn predictors_stay_within_observed_range(
        obs in prop::collection::vec((0.0f64..10.0, 0.1f64..20.0), 1..40),
        alpha in 0.0f64..1.0,
    ) {
        let lo = obs.iter().map(|o| o.0).fold(f64::INFINITY, f64::min);
        let hi = obs.iter().map(|o| o.0).fold(0.0, f64::max);
        let mut va = VaEwma::new(alpha, 1.0);
        for &(v, t) in &obs {
            va.observe(v, t);
        }
        let p = va.predict().unwrap();
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }

    // ---- timelines ------------------------------------------------------------

    #[test]
    fn resampled_buckets_are_convex_combinations_of_periods(
        periods in prop::collection::vec(
            (1.0f64..5000.0, 1.0f64..2000.0, 0.0f64..50.0, 0.0f64..10.0),
            1..30,
        ),
        bucket in 10.0f64..500.0,
    ) {
        let timeline = Timeline::from_periods(
            periods
                .iter()
                .map(|&(cycles, instructions, l2_refs, l2_misses)| SamplePeriod {
                    cycles,
                    instructions,
                    l2_refs,
                    l2_misses,
                })
                .collect(),
        );
        // Every bucket blends (instruction-weighted) the CPIs of the
        // periods overlapping it, so all bucket values must lie within the
        // global [min, max] period CPI envelope.
        let cpis: Vec<f64> = timeline
            .periods()
            .iter()
            .filter_map(|p| p.value(Metric::Cpi))
            .collect();
        prop_assume!(!cpis.is_empty());
        let lo = cpis.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = cpis.iter().cloned().fold(0.0, f64::max);
        let series = timeline.series(Metric::Cpi, bucket);
        for (i, &v) in series.values().iter().enumerate() {
            prop_assert!(
                v >= lo - 1e-9 * hi && v <= hi + 1e-9 * hi,
                "bucket {i} value {v} outside period envelope [{lo}, {hi}]"
            );
        }
        // Bucket count is the floor of total instructions over the bucket
        // size, plus at most one kept tail.
        let n = series.len() as f64;
        let expect = timeline.total_instructions() / bucket;
        prop_assert!(n >= expect.floor() && n <= expect.floor() + 1.0);
        // Uniform-CPI timelines resample exactly.
        let flat = Timeline::from_periods(
            periods
                .iter()
                .map(|&(_, instructions, ..)| SamplePeriod {
                    cycles: instructions * 2.0,
                    instructions,
                    l2_refs: 0.0,
                    l2_misses: 0.0,
                })
                .collect(),
        );
        for &v in flat.series(Metric::Cpi, bucket).values() {
            prop_assert!((v - 2.0).abs() < 1e-9, "flat bucket {v}");
        }
    }

    // ---- contention model -------------------------------------------------------

    #[test]
    fn miss_ratio_curve_is_well_behaved(
        share in 0.0f64..1e7,
        ws in 0.0f64..1e8,
        locality in 0.0f64..1.0,
        exponent in 0.2f64..1.5,
    ) {
        let m = miss_ratio(share, ws, locality, exponent);
        prop_assert!((0.0..=1.0).contains(&m));
        // Monotone nonincreasing in share.
        let m2 = miss_ratio(share * 1.5 + 1.0, ws, locality, exponent);
        prop_assert!(m2 <= m + 1e-12);
        // Never misses less than the inherent streaming fraction.
        prop_assert!(m >= 1.0 - locality - 1e-12);
    }

    #[test]
    fn proportional_fill_respects_capacity_and_limits(
        weights in prop::collection::vec(0.0f64..10.0, 1..8),
        limits in prop::collection::vec(0.0f64..100.0, 1..8),
        capacity in 1.0f64..200.0,
    ) {
        let n = weights.len().min(limits.len());
        let weights = &weights[..n];
        let limits = &limits[..n];
        let shares = proportional_fill(capacity, weights, limits);
        let total: f64 = shares.iter().sum();
        prop_assert!(total <= capacity + 1e-6);
        for i in 0..n {
            prop_assert!(shares[i] >= -1e-12);
            prop_assert!(shares[i] <= limits[i] + 1e-6);
            if weights[i] == 0.0 {
                prop_assert_eq!(shares[i], 0.0);
            }
        }
    }

    #[test]
    fn contention_model_estimates_are_sane(
        base_cpi in 0.3f64..3.0,
        refs in 0.0f64..0.03,
        ws in 0.0f64..400e6,
        locality in 0.0f64..1.0,
        occupancy in prop::collection::vec(prop::bool::ANY, 4),
    ) {
        let machine = MachineSpec::xeon_5160();
        let profile = SegmentProfile {
            base_cpi,
            l2_refs_per_ins: refs,
            working_set_bytes: ws,
            reuse_locality: locality,
        };
        let running: Vec<Option<SegmentProfile>> = occupancy
            .iter()
            .map(|&b| b.then_some(profile))
            .collect();
        let out = machine.evaluate(&running);
        let solo = machine.solo(profile);
        prop_assert!(solo.cpi >= base_cpi - 1e-9);
        for (slot, est) in running.iter().zip(&out) {
            prop_assert_eq!(slot.is_some(), est.is_some());
            if let Some(e) = est {
                prop_assert!(e.cpi.is_finite() && e.cpi >= base_cpi - 1e-9);
                prop_assert!((0.0..=1.0).contains(&e.l2_miss_ratio));
                prop_assert!(e.l2_share_bytes >= -1e-9);
                prop_assert!(e.l2_share_bytes <= machine.l2_capacity_bytes + 1e-6);
                // Co-running can only hurt.
                prop_assert!(e.cpi >= solo.cpi - 1e-6 * solo.cpi);
            }
        }
    }
}
