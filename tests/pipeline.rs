//! Cross-crate pipeline integration tests: the engine's conservation and
//! determinism guarantees under every workload, exercised through the
//! public facade.

use request_behavior_variations::core::series::Metric;
use request_behavior_variations::os::{run_simulation, RunResult, SimConfig};
use request_behavior_variations::workloads::{factory_for, AppId};

fn run(app: AppId, seed: u64, n: usize, serial: bool) -> RunResult {
    let scale = match app {
        AppId::Tpch => 0.1,
        AppId::Webwork => 0.02,
        _ => 0.3,
    };
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(app.sampling_period_micros());
    cfg.seed = seed;
    if serial {
        cfg = cfg.serial();
    }
    let mut factory = factory_for(app, seed, scale);
    run_simulation(cfg, factory.as_mut(), n).expect("valid config")
}

#[test]
fn every_application_completes_with_attributed_counters() {
    for app in AppId::SERVER_APPS {
        let result = run(app, 11, 15, false);
        assert_eq!(result.completed.len(), 15, "{app}");
        for r in &result.completed {
            assert!(r.timeline.total_instructions() > 0.0, "{app}");
            assert!(r.timeline.total_cycles() > 0.0, "{app}");
            let cpi = r.request_cpi().expect("instructions retired");
            assert!((0.3..20.0).contains(&cpi), "{app}: CPI {cpi}");
            // CPU time never exceeds wall-clock latency.
            assert!(r.cpu_cycles() <= r.latency().as_f64() * 1.001, "{app}");
            // Serialized timeline periods are all nonempty.
            for p in r.timeline.periods() {
                assert!(p.cycles > 0.0 || p.instructions > 0.0, "{app}");
            }
        }
    }
}

#[test]
fn instructions_are_conserved_through_the_engine() {
    for app in AppId::SERVER_APPS {
        let scale = match app {
            AppId::Tpch => 0.1,
            AppId::Webwork => 0.02,
            _ => 0.3,
        };
        let mut reference = factory_for(app, 23, scale);
        let expected: f64 = (0..10)
            .map(|_| reference.next_request().total_instructions().as_f64())
            .sum();
        let result = run(app, 23, 10, false);
        let measured: f64 = result
            .completed
            .iter()
            .map(|r| r.timeline.total_instructions())
            .sum();
        let rel = (measured - expected).abs() / expected;
        // Observer-effect injection/compensation allows a small residue.
        assert!(
            rel < 0.03,
            "{app}: measured {measured} vs expected {expected}"
        );
    }
}

#[test]
fn runs_are_bit_deterministic() {
    for app in [AppId::Tpcc, AppId::Rubis] {
        let a = run(app, 7, 12, false);
        let b = run(app, 7, 12, false);
        assert_eq!(a.completed.len(), b.completed.len());
        for (x, y) in a.completed.iter().zip(&b.completed) {
            assert_eq!(x.class, y.class, "{app}");
            assert_eq!(x.timeline, y.timeline, "{app}");
            assert_eq!(x.finished_at, y.finished_at, "{app}");
            assert_eq!(x.syscalls.len(), y.syscalls.len(), "{app}");
        }
        assert_eq!(a.stats, b.stats, "{app}");
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(AppId::Tpcc, 1, 10, false);
    let b = run(AppId::Tpcc, 2, 10, false);
    assert_ne!(
        a.completed[0].timeline, b.completed[0].timeline,
        "seeds must decorrelate runs"
    );
}

#[test]
fn serial_runs_never_overlap_requests() {
    let result = run(AppId::WebServer, 3, 12, true);
    for w in result.completed.windows(2) {
        assert!(w[0].finished_at <= w[1].arrived_at);
    }
}

#[test]
fn multi_stage_requests_visit_all_components() {
    let result = run(AppId::Rubis, 5, 10, false);
    for r in &result.completed {
        // Socket hand-offs of the three-tier pipeline show in the syscall
        // stream.
        let names = r.syscall_names();
        use request_behavior_variations::workloads::SyscallName;
        assert!(names.contains(&SyscallName::Sendto));
        assert!(names.contains(&SyscallName::Recvfrom));
    }
}

#[test]
fn derived_metrics_are_internally_consistent() {
    let result = run(AppId::Tpcc, 9, 10, false);
    for r in &result.completed {
        for p in r.timeline.periods() {
            if let (Some(rpi), Some(mpr), Some(mpi)) = (
                p.value(Metric::L2RefsPerIns),
                p.value(Metric::L2MissesPerRef),
                p.value(Metric::L2MissesPerIns),
            ) {
                assert!((rpi * mpr - mpi).abs() < 1e-9 * (1.0 + mpi));
                assert!((0.0..=1.0 + 1e-9).contains(&mpr));
            }
        }
    }
}

#[test]
fn disabling_noise_and_compensation_are_honored() {
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(100);
    cfg.counter_noise = 0.0;
    cfg.compensate_observer_effect = false;
    let mut f = factory_for(AppId::Tpcc, 4, 0.2);
    let raw = run_simulation(cfg.clone(), f.as_mut(), 8).expect("valid");

    cfg.compensate_observer_effect = true;
    let mut f = factory_for(AppId::Tpcc, 4, 0.2);
    let compensated = run_simulation(cfg, f.as_mut(), 8).expect("valid");

    // Compensation removes sampling-induced events: fewer instructions
    // attributed overall.
    let total = |r: &RunResult| {
        r.completed
            .iter()
            .map(|c| c.timeline.total_instructions())
            .sum::<f64>()
    };
    assert!(
        total(&compensated) < total(&raw),
        "compensated {} vs raw {}",
        total(&compensated),
        total(&raw)
    );
}
