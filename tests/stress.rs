//! Stress and failure-injection tests: the engine's invariants must
//! survive pathological configurations — extreme quanta, extreme sampling
//! rates, deep concurrency, tiny machines, and hostile parameter corners.

use request_behavior_variations::core::series::Metric;
use request_behavior_variations::mem::{MachineSpec, Topology};
use request_behavior_variations::os::{run_simulation, RunResult, SamplingPolicy, SimConfig};
use request_behavior_variations::sim::Cycles;
use request_behavior_variations::workloads::{
    factory_for, AppId, RequestFactory as _, Tpcc, WebServer,
};

fn sane(result: &RunResult, expected: usize) {
    assert_eq!(result.completed.len(), expected);
    for r in &result.completed {
        assert!(r.timeline.total_instructions() > 0.0);
        assert!(r.cpu_cycles() > 0.0);
        // Observer-effect cycles are charged to counters but not to wall
        // time (see rbv-os::machine docs): under the pathological sampling
        // rates of this suite the residue can reach a few percent.
        assert!(r.cpu_cycles() <= r.latency().as_f64() * 1.05 + 1e4);
        let cpi = r.request_cpi().expect("retired instructions");
        assert!(cpi.is_finite() && cpi > 0.1 && cpi < 100.0, "CPI {cpi}");
        for p in r.timeline.periods() {
            assert!(p.cycles >= 0.0 && p.instructions >= 0.0);
            assert!(p.l2_refs >= 0.0 && p.l2_misses >= 0.0);
            if let Some(m) = p.value(Metric::L2MissesPerRef) {
                assert!(m <= 1.0 + 1e-9, "miss ratio {m}");
            }
        }
    }
}

#[test]
fn tiny_quantum_forces_constant_context_switching() {
    // A 20 us quantum is 5000x smaller than the default: every request is
    // chopped into hundreds of execution periods, and attribution must
    // still conserve work.
    let mut cfg = SimConfig::paper_default();
    cfg.quantum = Cycles::from_micros(20);
    let mut f = Tpcc::new(31, 0.1);
    let r = run_simulation(cfg, &mut f, 30).expect("valid");
    sane(&r, 30);
    // Many in-kernel (context switch) samples occurred.
    assert!(
        r.stats.samples_inkernel > 100,
        "{}",
        r.stats.samples_inkernel
    );
}

#[test]
fn extreme_sampling_rate_does_not_distort_totals() {
    // 1 us interrupts: the observer effect is injected thousands of times;
    // "do no harm" compensation must keep totals close to the uninstrumented
    // instruction stream.
    let mut expected = Tpcc::new(32, 0.1);
    let total: f64 = (0..6)
        .map(|_| expected.next_request().total_instructions().as_f64())
        .sum();
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(1);
    cfg.seed = 32;
    let mut f = Tpcc::new(32, 0.1);
    let r = run_simulation(cfg, &mut f, 6).expect("valid");
    sane(&r, 6);
    let measured: f64 = r
        .completed
        .iter()
        .map(|c| c.timeline.total_instructions())
        .sum();
    let rel = (measured - total).abs() / total;
    assert!(rel < 0.06, "relative drift {rel}");
}

#[test]
fn deep_concurrency_conserves_every_request() {
    let mut cfg = SimConfig::paper_default();
    cfg.concurrency = 64;
    let mut f = WebServer::new(33, 0.5);
    let r = run_simulation(cfg, &mut f, 100).expect("valid");
    sane(&r, 100);
    // Queueing must show: with 64 in flight on 4 cores, latencies dwarf
    // CPU times for most requests.
    let queued = r
        .completed
        .iter()
        .filter(|c| c.latency().as_f64() > c.cpu_cycles() * 3.0)
        .count();
    assert!(queued > 50, "queued {queued}");
}

#[test]
fn single_core_machine_works() {
    let mut cfg = SimConfig::paper_default();
    cfg.machine = MachineSpec {
        topology: Topology {
            cores: 1,
            cores_per_cluster: 1,
        },
        ..MachineSpec::xeon_5160()
    };
    cfg.concurrency = 3;
    let mut f = Tpcc::new(34, 0.05);
    let r = run_simulation(cfg, &mut f, 8).expect("valid");
    sane(&r, 8);
}

#[test]
fn eight_core_machine_works() {
    let mut cfg = SimConfig::paper_default();
    cfg.machine = MachineSpec {
        topology: Topology {
            cores: 8,
            cores_per_cluster: 2,
        },
        ..MachineSpec::xeon_5160()
    };
    cfg.concurrency = 16;
    let mut f = Tpcc::new(35, 0.05);
    let r = run_simulation(cfg, &mut f, 30).expect("valid");
    sane(&r, 30);
}

#[test]
fn zero_requests_is_a_clean_noop() {
    let mut f = Tpcc::new(36, 0.05);
    let r = run_simulation(SimConfig::paper_default(), &mut f, 0).expect("valid");
    assert!(r.completed.is_empty());
    assert_eq!(r.stats.samples_inkernel, 0);
}

#[test]
fn one_request_serial_is_minimal() {
    let mut f = Tpcc::new(37, 0.05);
    let r = run_simulation(SimConfig::paper_default().serial(), &mut f, 1).expect("valid");
    sane(&r, 1);
    // No queueing in a serial single-request run.
    let c = &r.completed[0];
    assert!(c.latency().as_f64() <= c.cpu_cycles() * 1.01);
}

#[test]
fn backup_interrupt_equal_to_min_plus_one_is_legal() {
    let mut cfg = SimConfig::paper_default();
    cfg.sampling = SamplingPolicy::SyscallTriggered {
        t_syscall_min: Cycles::from_micros(1),
        t_backup_int: Cycles::from_micros(2),
    };
    let mut f = WebServer::new(38, 0.2);
    let r = run_simulation(cfg, &mut f, 5).expect("valid");
    sane(&r, 5);
}

#[test]
fn maximum_noise_stays_nonnegative() {
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(10);
    cfg.counter_noise = 0.99;
    let mut f = WebServer::new(39, 0.3);
    let r = run_simulation(cfg, &mut f, 10).expect("valid");
    sane(&r, 10);
}

#[test]
fn every_app_survives_tiny_scale_and_tiny_quantum_together() {
    for app in AppId::SERVER_APPS {
        let mut cfg = SimConfig::paper_default().with_interrupt_sampling(5);
        cfg.quantum = Cycles::from_micros(50);
        let scale = match app {
            AppId::Tpch => 0.02,
            AppId::Webwork => 0.005,
            _ => 0.05,
        };
        let mut f = factory_for(app, 40, scale);
        let r = run_simulation(cfg, f.as_mut(), 6).expect("valid");
        sane(&r, 6);
    }
}

#[test]
fn partitioning_and_affinity_and_open_loop_compose() {
    use request_behavior_variations::os::config::ArrivalProcess;
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(100);
    cfg.static_cache_partition = true;
    cfg.component_affinity = true;
    cfg.arrivals = ArrivalProcess::OpenPoisson {
        mean_interarrival: Cycles::from_micros(300),
    };
    let mut f = factory_for(AppId::Rubis, 41, 0.2);
    let r = run_simulation(cfg, f.as_mut(), 15).expect("valid");
    sane(&r, 15);
}
