//! End-to-end integration tests asserting the paper's *qualitative shapes*
//! on every reproduced artifact, at reduced (fast) experiment scale.
//!
//! These call the same experiment computations the `repro` binary prints,
//! so a passing suite means the regenerated tables and figures tell the
//! same story as the paper: who wins, in which direction, by roughly what
//! factor.

use rbv_bench::experiments::*;
use rbv_workloads::AppId;

#[test]
fn fig1_multicore_obfuscates_request_performance() {
    let rows = fig1::compute(true);
    for pair in rows.chunks(2) {
        let (serial, conc) = (&pair[0], &pair[1]);
        assert!(serial.serial && !conc.serial);
        match serial.app {
            AppId::Webwork => {
                // WeBWorK sees no significant impact.
                assert!(
                    conc.p90 / serial.p90 < 1.06,
                    "WeBWorK should be immune: {} vs {}",
                    serial.p90,
                    conc.p90
                );
            }
            AppId::Tpch => {
                // TPCH's tail degrades the most (the paper sees ~2x).
                assert!(
                    conc.p90 / serial.p90 > 1.45,
                    "TPCH p90 should inflate heavily: {} vs {}",
                    serial.p90,
                    conc.p90
                );
            }
            _ => {
                assert!(
                    conc.p90 >= serial.p90 * 0.99,
                    "{}: concurrent p90 {} below serial {}",
                    serial.app,
                    conc.p90,
                    serial.p90
                );
            }
        }
        if serial.app == AppId::Tpcc {
            // Multiple clusters from the distinct transaction types.
            assert!(
                serial.modes >= 2,
                "TPCC serial distribution should be multimodal, got {} modes",
                serial.modes
            );
        }
    }
}

#[test]
fn fig2_intra_request_variation_exists_at_every_granularity() {
    let traces = fig2::compute(true);
    assert_eq!(traces.len(), 5);
    for t in &traces {
        assert!(t.cpi.len() >= 5, "{}: too few buckets", t.app);
        assert!(
            t.cpi_cov() > 0.02,
            "{}: no intra-request variation captured (CoV {})",
            t.app,
            t.cpi_cov()
        );
    }
    // WeBWorK requests are the longest by far; web requests the shortest.
    let total = |t: &fig2::RequestTrace| t.cpi.len() as f64 * t.bucket_ins;
    let web = traces.iter().find(|t| t.app == AppId::WebServer).unwrap();
    let ww = traces.iter().find(|t| t.app == AppId::Webwork).unwrap();
    assert!(total(ww) > total(web) * 20.0);
}

#[test]
fn tab1_observer_effect_matches_paper_structure() {
    use rbv_os::observer::SamplingContext;
    let rows = tab1::compute(true);
    let get = |ctx: SamplingContext, wl: &str| {
        rows.iter()
            .find(|r| r.context == ctx && r.workload == wl)
            .expect("row present")
            .cost
    };
    let ik_spin = get(SamplingContext::InKernel, "Mbench-Spin");
    let ik_data = get(SamplingContext::InKernel, "Mbench-Data");
    let ir_spin = get(SamplingContext::Interrupt, "Mbench-Spin");
    let ir_data = get(SamplingContext::Interrupt, "Mbench-Data");

    // Paper anchors: 0.42 / 0.46 / 0.76 / 0.80 us.
    assert!(
        (ik_spin.micros() - 0.42).abs() < 0.03,
        "{}",
        ik_spin.micros()
    );
    assert!(
        (ir_spin.micros() - 0.76).abs() < 0.04,
        "{}",
        ir_spin.micros()
    );
    assert!(ik_data.micros() > ik_spin.micros());
    assert!(ir_data.micros() > ir_spin.micros());
    // The data workload evicts the ~13 statistics lines; spin does not.
    assert_eq!(ik_spin.l2_refs, 0.0);
    assert!((ik_data.l2_refs - 13.0).abs() < 1.5, "{}", ik_data.l2_refs);
    // No measurable L2 misses in any cell (the stat lines stay L2-resident).
    assert!(ik_data.l2_misses < 0.5);
}

#[test]
fn fig3_intra_request_fluctuations_dominate() {
    use rbv_core::series::Metric;
    let cells = fig3::compute(true);
    for c in &cells {
        assert!(
            c.with_intra >= c.inter_only * 0.99,
            "{} {}: intra must add variation ({} vs {})",
            c.app,
            c.metric,
            c.with_intra,
            c.inter_only
        );
    }
    // "much stronger metric variations for most applications": check CPI.
    for app in [AppId::WebServer, AppId::Rubis, AppId::Webwork] {
        let c = cells
            .iter()
            .find(|c| c.app == app && c.metric == Metric::Cpi)
            .unwrap();
        assert!(
            c.with_intra > c.inter_only * 2.0,
            "{app}: intra should dominate ({} vs {})",
            c.with_intra,
            c.inter_only
        );
    }
}

#[test]
fn fig4_syscall_density_ordering() {
    let curves = fig4::compute(true);
    let p16 = |app: AppId| {
        curves
            .iter()
            .find(|c| c.app == app)
            .unwrap()
            .p_within_us(16.0)
    };
    // Paper: web 97%, TPCH 83%, RUBiS 72% within 16 us; TPCC and WeBWorK
    // far sparser but usually within 1 ms.
    assert!(p16(AppId::WebServer) > 0.90, "{}", p16(AppId::WebServer));
    assert!(p16(AppId::Tpch) > 0.60);
    assert!(p16(AppId::Rubis) > 0.55);
    assert!(p16(AppId::WebServer) > p16(AppId::Tpch));
    assert!(p16(AppId::Tpch) >= p16(AppId::Rubis));
    assert!(p16(AppId::Tpcc) < 0.35, "{}", p16(AppId::Tpcc));
    assert!(p16(AppId::Webwork) < 0.35);
    let p1ms = |app: AppId| {
        curves
            .iter()
            .find(|c| c.app == app)
            .unwrap()
            .p_within_us(1_000.0)
    };
    assert!(p1ms(AppId::Tpcc) > 0.70, "{}", p1ms(AppId::Tpcc));
    assert!(p1ms(AppId::Webwork) > 0.60, "{}", p1ms(AppId::Webwork));
}

#[test]
fn fig5_syscall_sampling_saves_overhead() {
    let rows = fig5::compute(true);
    for r in &rows {
        assert!(
            r.savings() > 0.05,
            "{}: syscall-triggered sampling should save cost, got {:.2}",
            r.app,
            r.savings()
        );
        assert!(
            r.savings() < 0.50,
            "{}: savings bounded by the in-kernel/interrupt cost ratio, got {:.2}",
            r.app,
            r.savings()
        );
        // Frequencies were matched within ~25%.
        let ratio = r.syscall_samples as f64 / r.interrupt_samples as f64;
        assert!(
            (0.7..1.35).contains(&ratio),
            "{}: unmatched frequencies ({ratio:.2})",
            r.app
        );
    }
}

#[test]
fn tab2_transition_signals_have_paper_directions() {
    use rbv_workloads::SyscallName;
    let (rows, _) = tab2::compute(true);
    let mean_of = |n: SyscallName| rows.iter().find(|r| r.name == n).map(|r| r.mean);
    // writev signals a large CPI increase; lseek a decrease (Table 2).
    let writev = mean_of(SyscallName::Writev).expect("writev observed");
    let lseek = mean_of(SyscallName::Lseek).expect("lseek observed");
    assert!(writev > 1.0, "writev mean change {writev}");
    assert!(lseek < -0.5, "lseek mean change {lseek}");
    // writev has the largest magnitude overall (it tops the table).
    assert_eq!(rows[0].name, SyscallName::Writev);
}

#[test]
fn transition_signal_sampling_improves_captured_variation() {
    let c = sig::compute(true);
    assert!(
        c.enhanced_cov > c.baseline_cov * 1.05,
        "enhanced {} vs baseline {}",
        c.enhanced_cov,
        c.baseline_cov
    );
    // At comparable sampling cost.
    let ratio = c.enhanced_samples as f64 / c.baseline_samples as f64;
    assert!((0.65..1.5).contains(&ratio), "sample ratio {ratio}");
}

#[test]
fn fig6_dtw_absorbs_drift_cheaper_than_l1() {
    let pair = fig6::compute(true);
    assert!(pair.penalty > 0.0);
    assert!(
        pair.dtw < pair.l1 * 0.9,
        "DTW+penalty {} should undercut L1 {} on a drifting pair",
        pair.dtw,
        pair.l1
    );
}

#[test]
fn fig7_dtw_with_penalty_classifies_best() {
    use fig7::MeasureKind::*;
    let cells = fig7::compute(true);
    let get = |app: AppId, m: fig7::MeasureKind| {
        cells
            .iter()
            .find(|c| c.app == app && c.measure == m)
            .unwrap()
    };
    for app in AppId::SERVER_APPS {
        let best = get(app, DtwWithPenalty).cpu_time_divergence;
        // The asynchrony penalty rescues plain DTW...
        assert!(
            best <= get(app, Dtw).cpu_time_divergence * 1.05,
            "{app}: penalty must not hurt DTW"
        );
        // ...and beats the software-only baseline on CPU time.
        assert!(
            best < get(app, SyscallLevenshtein).cpu_time_divergence * 1.05,
            "{app}: DTW+penalty {best} vs Levenshtein {}",
            get(app, SyscallLevenshtein).cpu_time_divergence
        );
        // L1 is a close second (within 2x either way).
        let l1 = get(app, L1).cpu_time_divergence;
        assert!(l1 < best * 2.5 + 2.0, "{app}: L1 {l1} vs {best}");
    }
    // Average CPI is poor on CPU time for the database workloads
    // (Figure 7A) despite being fine on peak CPI (Figure 7B).
    for app in [AppId::Tpcc, AppId::Tpch] {
        let avg = get(app, AverageCpi);
        let best = get(app, DtwWithPenalty);
        assert!(
            avg.cpu_time_divergence > best.cpu_time_divergence * 1.5,
            "{app}: avg-CPI should trail on CPU time"
        );
        assert!(
            avg.peak_cpi_divergence < avg.cpu_time_divergence,
            "{app}: avg-CPI is relatively better on peak CPI"
        );
    }
    // Plain DTW badly underestimates for at least some applications.
    let dtw_fails = AppId::SERVER_APPS.iter().any(|&app| {
        get(app, Dtw).cpu_time_divergence > get(app, DtwWithPenalty).cpu_time_divergence * 2.0
    });
    assert!(dtw_fails, "free warping should hurt somewhere");
}

#[test]
fn fig8_anomaly_has_elevated_cpi_and_misses() {
    let t = fig8::compute(true);
    assert_eq!(t.anomaly.len(), 3);
    assert!(t.distance > 0.0);
    // Anomaly and reference share the same query: similar trace lengths.
    let (la, lr) = (t.anomaly[0].len() as f64, t.reference[0].len() as f64);
    assert!((la / lr - 1.0).abs() < 0.35, "lengths {la} vs {lr}");
}

#[test]
fn fig9_multi_metric_pair_is_similar_in_usage_divergent_in_cpi() {
    let t = fig9::compute(true);
    assert!(
        t.cpis.0 > t.cpis.1,
        "anomaly {} should be slower than reference {}",
        t.cpis.0,
        t.cpis.1
    );
}

#[test]
fn fig10_variation_signatures_beat_baselines() {
    let curves = fig10::compute(true);
    for c in &curves {
        let best_var = c
            .variation_error
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let best_avg = c
            .average_error
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        match c.app {
            AppId::Webwork => {
                // Identical early processing defeats both signature forms:
                // the curves stay flat, far from zero.
                let spread = c.variation_error.iter().cloned().fold(0.0, f64::max) - best_var;
                assert!(spread < 0.12, "WeBWorK curve should be flat: {spread}");
                assert!(best_var > 0.2, "WeBWorK signatures should stay poor");
            }
            _ => {
                assert!(
                    best_var < c.past_error,
                    "{}: variation {best_var} vs past {}",
                    c.app,
                    c.past_error
                );
                assert!(
                    best_var <= best_avg + 0.02,
                    "{}: variation {best_var} vs average {best_avg}",
                    c.app
                );
            }
        }
    }
}

#[test]
fn fig11_vaewma_wins_with_mid_range_gains() {
    let all = fig11::compute(true);
    for s in &all {
        let best = s.best_vaewma();
        let last = s.score_of("last value").unwrap();
        let avg = s.score_of("request average").unwrap();
        assert!(
            best < last,
            "{}: best vaEWMA {best} should beat last value {last}",
            s.app
        );
        assert!(
            best < avg,
            "{}: best vaEWMA {best} should beat request average {avg}",
            s.app
        );
        // The optimum sits at a mid-range gain, not at the extremes.
        let a01 = s.score_of("vaEWMA a=0.1").unwrap();
        let a09 = s.score_of("vaEWMA a=0.9").unwrap();
        assert!(best < a09, "{}: a=0.9 should not be optimal", s.app);
        assert!(
            best <= a01 + 1e-12,
            "{}: a=0.1 should not beat the mid range",
            s.app
        );
    }
}

#[test]
fn fig12_contention_easing_keeps_cpi_flat() {
    // Fast mode (one seed, 1/5 scale requests) sits within seed noise for
    // the >=3-core high-usage cut, so this fast test checks only the
    // Figure 13 side effects; the Figure 12 contention cut itself is
    // asserted at full scale by the `#[ignore]`d test below (see
    // EXPERIMENTS.md for the seed-sweep data behind this split).
    let outcomes = fig12_13::compute(true);
    for pair in outcomes.chunks(2) {
        let (orig, eased) = (&pair[0], &pair[1]);
        assert!(!orig.contention_easing && eased.contention_easing);
        // Figure 13: the average is essentially unchanged.
        assert!(
            (eased.cpi_mean / orig.cpi_mean - 1.0).abs() < 0.05,
            "{}: average CPI should be flat ({} vs {})",
            orig.app,
            eased.cpi_mean,
            orig.cpi_mean
        );
        // The worst case does not regress.
        assert!(
            eased.cpi_p99 < orig.cpi_p99 * 1.03,
            "{}: p99 CPI should not regress ({} vs {})",
            orig.app,
            eased.cpi_p99,
            orig.cpi_p99
        );
    }
}

#[test]
#[ignore = "full-scale (1000-request, 3-seed) run; takes minutes"]
fn fig12_contention_easing_cuts_simultaneous_high_usage_full_scale() {
    let outcomes = fig12_13::compute(false);
    for pair in outcomes.chunks(2) {
        let (orig, eased) = (&pair[0], &pair[1]);
        assert!(!orig.contention_easing && eased.contention_easing);
        // The most intensive contention shrinks (the paper's ~25% cut at
        // the 4-core level; >= 3 cores is the stable summary here —
        // roughly a 21% cut for TPC-H and 10% for WeBWorK across seeds).
        assert!(
            eased.high_ge3 < orig.high_ge3,
            "{}: >=3-core high time should shrink ({} vs {})",
            orig.app,
            eased.high_ge3,
            orig.high_ge3
        );
    }
}

#[test]
fn extension_bigram_signals_are_sharper_than_names() {
    // §3.2's suggested improvement: (previous, current) syscall bigrams
    // disambiguate a name recurring in several semantic contexts.
    let rows = ablate::ablate_signals(true);
    let name = rows.iter().find(|r| r.kind == "name").unwrap();
    let bigram = rows.iter().find(|r| r.kind == "bigram").unwrap();
    assert!(
        bigram.consistency > name.consistency,
        "bigram consistency {} vs name {}",
        bigram.consistency,
        name.consistency
    );
    assert!(bigram.mean_abs_change > name.mean_abs_change);
}

#[test]
fn extension_platform_projection_predicts_target_cpi() {
    // §7 future work: project measured timelines onto a faster-memory
    // machine and check against a ground-truth run of that machine.
    use rbv_core::stats::mean;
    use rbv_mem::MachineSpec;
    use rbv_os::{run_simulation, PlatformProjection, SimConfig};
    use rbv_workloads::factory_for;

    let source = MachineSpec::xeon_5160();
    let target = MachineSpec {
        l2_hit_cycles: 11.0,
        mem_base_cycles: 150.0,
        peak_lines_per_cycle: source.peak_lines_per_cycle * 2.0,
        ..source
    };
    let run = |machine: MachineSpec| {
        let mut cfg = SimConfig::paper_default()
            .with_interrupt_sampling(100)
            .serial();
        cfg.machine = machine;
        let mut factory = factory_for(AppId::Tpcc, 5, 0.3);
        run_simulation(cfg, factory.as_mut(), 20).expect("valid")
    };
    let src = run(source);
    let tgt = run(target);

    let projection = PlatformProjection::new(source, target);
    let projected: Vec<f64> = src
        .completed
        .iter()
        .filter_map(|r| {
            projection
                .project_timeline(&r.timeline)
                .average(rbv_core::series::Metric::Cpi)
        })
        .collect();
    let predicted = mean(&projected).unwrap();
    let actual = mean(&tgt.request_cpis()).unwrap();
    let src_cpi = mean(&src.request_cpis()).unwrap();
    // The projection must capture most of the real improvement.
    assert!(actual < src_cpi, "target machine should be faster");
    let rel_err = (predicted / actual - 1.0).abs();
    assert!(
        rel_err < 0.08,
        "projection error {rel_err:.3} (predicted {predicted:.3}, actual {actual:.3})"
    );
    // And it must predict an improvement, not just the status quo.
    assert!(predicted < src_cpi * 0.97);
}
