//! Smoke test of the full `repro` harness: every registered experiment's
//! *printing* path (not just the compute path the shape tests use) must run
//! to completion in fast mode.

use rbv_bench::experiments::{dispatch, REGISTRY};

#[test]
fn every_registered_experiment_dispatches() {
    for (id, _) in REGISTRY {
        assert!(dispatch(id, true), "experiment `{id}` failed to dispatch");
    }
    assert!(!dispatch("no-such-experiment", true));
}

#[test]
fn csv_dumps_run_for_every_application() {
    use rbv_workloads::AppId;
    for app in AppId::SERVER_APPS {
        let mut timelines = Vec::new();
        rbv_bench::experiments::dump::write_csv(app, true, &mut timelines).expect("timeline dump");
        assert!(timelines.len() > 200, "{app}: timeline CSV too small");
        let mut syscalls = Vec::new();
        rbv_bench::experiments::dump::write_syscalls_csv(app, true, &mut syscalls)
            .expect("syscall dump");
        assert!(syscalls.len() > 200, "{app}: syscall CSV too small");
    }
}
