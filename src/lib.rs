//! # Request Behavior Variations — reproduction
//!
//! A full Rust reproduction of *Request Behavior Variations* (Kai Shen,
//! ASPLOS 2010): a simulated multicore server platform, OS-level online
//! tracking of per-request hardware behavior variations, variation-driven
//! request modeling (classification, anomaly analysis, online signatures,
//! online prediction), and contention-easing CPU scheduling.
//!
//! This crate is a facade re-exporting the workspace layers:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `rbv-sim` | discrete-event substrate: time, RNG, event queue |
//! | [`mem`] | `rbv-mem` | cache simulator + analytical contention model |
//! | [`workloads`] | `rbv-workloads` | the five server application models |
//! | [`os`] | `rbv-os` | simulated kernel: scheduling + counter sampling |
//! | [`core`] | `rbv-core` | request modeling: distances, clustering, signatures, predictors |
//! | [`par`] | `rbv-par` | deterministic scoped-thread work pool (ordered collect) |
//! | [`telemetry`] | `rbv-telemetry` | trace events, metrics registry, Perfetto export |
//!
//! # Quickstart
//!
//! ```
//! use request_behavior_variations::os::{run_simulation, SimConfig};
//! use request_behavior_variations::workloads::Tpcc;
//! use request_behavior_variations::core::series::Metric;
//!
//! // Run 10 TPC-C transactions on the simulated 4-core machine.
//! let mut factory = Tpcc::new(1, 0.05);
//! let result = run_simulation(SimConfig::paper_default(), &mut factory, 10)
//!     .expect("valid configuration");
//!
//! // Per-request CPI distribution (Figure 1 material).
//! let cpis = result.request_cpis();
//! assert_eq!(cpis.len(), 10);
//!
//! // A request's CPI variation pattern (Figure 2 material).
//! let series = result.completed[0].series(Metric::Cpi, 10_000.0);
//! assert!(!series.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rbv_core as core;
pub use rbv_mem as mem;
pub use rbv_os as os;
pub use rbv_par as par;
pub use rbv_sim as sim;
pub use rbv_telemetry as telemetry;
pub use rbv_workloads as workloads;
