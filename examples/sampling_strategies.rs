//! Comparing the paper's counter sampling strategies on the web server
//! (§3): periodic interrupts, system call-triggered sampling with a backup
//! timer, and transition-signal sampling, measuring cost and captured
//! variation for each.
//!
//! ```text
//! cargo run --release --example sampling_strategies
//! ```

use std::collections::HashSet;

use request_behavior_variations::core::series::Metric;
use request_behavior_variations::core::stats::coefficient_of_variation;
use request_behavior_variations::os::{run_simulation, RunResult, SamplingPolicy, SimConfig};
use request_behavior_variations::sim::Cycles;
use request_behavior_variations::workloads::{SyscallName, WebServer};

fn captured_cov(result: &RunResult) -> f64 {
    let mut lengths = Vec::new();
    let mut values = Vec::new();
    for r in &result.completed {
        let (mut l, mut v) = r.timeline.weighted_values(Metric::Cpi);
        lengths.append(&mut l);
        values.append(&mut v);
    }
    coefficient_of_variation(&lengths, &values).unwrap_or(0.0)
}

fn main() {
    let policies: Vec<(&str, SamplingPolicy)> = vec![
        ("context switches only", SamplingPolicy::ContextSwitchOnly),
        (
            "interrupts @ 10us",
            SamplingPolicy::Interrupt {
                period: Cycles::from_micros(10),
            },
        ),
        (
            "syscall-triggered (6us min, 40us backup)",
            SamplingPolicy::SyscallTriggered {
                t_syscall_min: Cycles::from_micros(6),
                t_backup_int: Cycles::from_micros(40),
            },
        ),
        (
            "transition signals {writev,lseek,stat,poll}",
            SamplingPolicy::TransitionSignals {
                triggers: HashSet::from([
                    SyscallName::Writev,
                    SyscallName::Lseek,
                    SyscallName::Stat,
                    SyscallName::Poll,
                ]),
                t_syscall_min: Cycles::from_micros(2),
                t_backup_int: Cycles::from_micros(150),
            },
        ),
    ];

    println!(
        "{:45} {:>9} {:>9} {:>12} {:>9}",
        "policy", "in-kernel", "interrupt", "overhead", "CPI CoV"
    );
    for (label, sampling) in policies {
        let mut cfg = SimConfig::paper_default();
        cfg.sampling = sampling;
        let mut factory = WebServer::new(11, 1.0);
        let result = run_simulation(cfg, &mut factory, 300).expect("valid");
        let cpu: f64 = result.completed.iter().map(|r| r.cpu_cycles()).sum();
        println!(
            "{label:45} {:>9} {:>9} {:>11.3}% {:>9.3}",
            result.stats.samples_inkernel,
            result.stats.samples_interrupt,
            result.stats.sampling_overhead_cycles() / cpu * 100.0,
            captured_cov(&result)
        );
    }
    println!();
    println!("in-kernel samples cost 0.42 us; interrupt samples 0.76 us (Table 1):");
    println!("syscall-triggered sampling buys the same variation capture cheaper, and");
    println!("transition signals concentrate samples where behavior actually changes.");
}
