//! Online request identification and behavior prediction (§4.4, §5.1):
//! build a signature bank from completed requests, identify new requests
//! from partial executions, and run the vaEWMA filter over a live counter
//! stream.
//!
//! ```text
//! cargo run --release --example online_prediction
//! ```

use request_behavior_variations::core::predict::{
    evaluate_rmse, LastValue, Predictor, RunningAverage, VaEwma,
};
use request_behavior_variations::core::series::Metric;
use request_behavior_variations::core::signature::{BankEntry, SignatureBank};
use request_behavior_variations::os::{run_simulation, SimConfig};
use request_behavior_variations::workloads::Tpcc;

fn main() {
    let mut factory = Tpcc::new(3, 1.0);
    let config = SimConfig::paper_default().with_interrupt_sampling(100);
    let result = run_simulation(config, &mut factory, 260).expect("valid");

    // --- Signature bank from the first 200 requests; evaluate on the rest.
    let (bank_requests, eval_requests) = result.completed.split_at(200);
    let signature = |r: &request_behavior_variations::os::CompletedRequest| {
        r.series(Metric::L2RefsPerIns, 150_000.0)
    };
    let bank = SignatureBank::new(
        bank_requests
            .iter()
            .map(|r| BankEntry {
                series: signature(r),
                cpu_cycles: r.cpu_cycles(),
            })
            .collect(),
    );

    let mut correct = 0;
    for r in eval_requests {
        let partial = signature(r).prefix(7); // ~1 M instructions seen
        let predicted = bank.predict_above_median(&partial, false);
        let actual = r.cpu_cycles() > bank.median_cpu();
        if predicted == Some(actual) {
            correct += 1;
        }
    }
    println!(
        "signature bank: {}/{} requests' CPU usage side predicted early in their execution",
        correct,
        eval_requests.len()
    );

    // --- Online prediction of L2 misses/instruction along one request.
    let request = eval_requests
        .iter()
        .max_by_key(|r| r.timeline.len())
        .expect("nonempty");
    let periods = request.timeline.periods();
    let durations: Vec<f64> = periods.iter().map(|p| p.cycles / 3.0e6).collect();
    let values: Vec<f64> = periods
        .iter()
        .map(|p| p.value(Metric::L2MissesPerIns).unwrap_or(0.0))
        .collect();
    println!(
        "\npredicting L2 misses/ins over one {} request ({} sample periods):",
        request.class,
        periods.len()
    );
    let mut predictors: Vec<(&str, Box<dyn Predictor>)> = vec![
        ("last value", Box::new(LastValue::new())),
        ("request average", Box::new(RunningAverage::new())),
        ("vaEWMA alpha=0.6", Box::new(VaEwma::new(0.6, 1.0))),
    ];
    for (label, p) in &mut predictors {
        let rmse = evaluate_rmse(p.as_mut(), &durations, &values);
        println!("  {label:18} RMSE {:.3e}", rmse.unwrap_or(f64::NAN));
    }
}
