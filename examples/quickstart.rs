//! Quickstart: simulate a TPC-C server on the 4-core machine, look at
//! request behavior variations, and classify requests by their variation
//! patterns — the paper's §2–§4 pipeline in fifty lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use request_behavior_variations::core::cluster::{k_medoids, DistanceMatrix};
use request_behavior_variations::core::distance::{dtw_distance_with_penalty, length_penalty};
use request_behavior_variations::core::series::Metric;
use request_behavior_variations::core::stats::percentile;
use request_behavior_variations::os::{run_simulation, SimConfig};
use request_behavior_variations::workloads::Tpcc;

fn main() {
    // 1. Run 120 TPC-C transactions, 8-way concurrent, sampling hardware
    //    counters every 100 us (the paper's TPCC setup).
    let mut factory = Tpcc::new(42, 1.0);
    let config = SimConfig::paper_default().with_interrupt_sampling(100);
    let result = run_simulation(config, &mut factory, 120).expect("valid configuration");

    // 2. Per-request CPI distribution (Figure 1 material).
    let cpis = result.request_cpis();
    println!(
        "request CPI: median {:.2}, 90th percentile {:.2}",
        percentile(&cpis, 0.5).unwrap(),
        percentile(&cpis, 0.9).unwrap()
    );

    // 3. One request's intra-request variation pattern (Figure 2 material).
    let request = &result.completed[0];
    let series = request.series(Metric::Cpi, 60_000.0);
    println!(
        "first request ({}) varies between CPI {:.2} and {:.2} over {} buckets",
        request.class,
        series
            .values()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min),
        series.values().iter().cloned().fold(0.0, f64::max),
        series.len()
    );

    // 4. Classify requests by DTW-with-asynchrony-penalty over their CPI
    //    variation patterns (§4.1-§4.2).
    let patterns: Vec<Vec<f64>> = result
        .completed
        .iter()
        .map(|r| r.series(Metric::Cpi, 60_000.0).values().to_vec())
        .collect();
    let refs: Vec<&[f64]> = patterns.iter().map(|p| p.as_slice()).collect();
    let penalty = length_penalty(&refs, 100_000);
    let matrix = DistanceMatrix::compute(patterns.len(), |i, j| {
        dtw_distance_with_penalty(&patterns[i], &patterns[j], penalty)
    });
    let clustering = k_medoids(&matrix, 5, 30);

    println!("\n5 clusters by variation pattern:");
    for c in 0..5 {
        let members = clustering.members_of(c);
        let mut classes: Vec<String> = members
            .iter()
            .map(|&i| result.completed[i].class.to_string())
            .collect();
        classes.sort();
        classes.dedup();
        println!(
            "  cluster {c}: {:3} members, transaction types {:?}",
            members.len(),
            classes
        );
    }
}
