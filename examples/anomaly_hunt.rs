//! Anomaly detection on a live TPC-H workload (§4.3): find the request
//! that deviates most from its semantic group, and hunt for multi-metric
//! anomaly pairs — similar work, divergent performance — that point at
//! multicore contention victims.
//!
//! ```text
//! cargo run --release --example anomaly_hunt
//! ```

use request_behavior_variations::core::anomaly::{centroid_outliers, multi_metric_pairs};
use request_behavior_variations::core::cluster::DistanceMatrix;
use request_behavior_variations::core::distance::{dtw_distance_with_penalty, length_penalty};
use request_behavior_variations::core::series::Metric;
use request_behavior_variations::core::stats::percentile;
use request_behavior_variations::os::{run_simulation, SimConfig};
use request_behavior_variations::workloads::{RequestClass, Tpch};

fn main() {
    // TPC-H at half scale, concurrent, 1 ms counter sampling.
    let mut factory = Tpch::new(7, 0.5);
    let config = SimConfig::paper_default().with_interrupt_sampling(1_000);
    let result = run_simulation(config, &mut factory, 102).expect("valid configuration");

    // --- Within-group outliers: all Q20 executions share semantics and
    // instruction streams; the one farthest from the group centroid is a
    // suspected anomaly (Figure 8).
    let group: Vec<_> = result
        .completed
        .iter()
        .filter(|r| r.class == RequestClass::TpchQuery(20))
        .collect();
    let series: Vec<Vec<f64>> = group
        .iter()
        .map(|r| r.series(Metric::Cpi, 1.2e6).values().to_vec())
        .collect();
    let slices: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
    let penalty = length_penalty(&slices, 100_000);
    let matrix = DistanceMatrix::compute(group.len(), |i, j| {
        dtw_distance_with_penalty(&series[i], &series[j], penalty)
    });
    let (centroid, outliers) = centroid_outliers(&matrix).expect("several Q20 runs");
    println!(
        "Q20 group of {}: centroid request CPI {:.2}",
        group.len(),
        group[centroid].request_cpi().unwrap()
    );
    for o in outliers.iter().take(3) {
        println!(
            "  suspected anomaly: request {:3} at distance {:.1}, CPI {:.2}",
            group[o.index].id,
            o.distance,
            group[o.index].request_cpi().unwrap()
        );
    }

    // --- Multi-metric pairs across the whole workload: similar L2
    // reference patterns (same work), divergent CPI (Figure 9).
    let usage: Vec<Vec<f64>> = result
        .completed
        .iter()
        .map(|r| r.series(Metric::L2RefsPerIns, 1.2e6).values().to_vec())
        .collect();
    let slices: Vec<&[f64]> = usage.iter().map(|s| s.as_slice()).collect();
    let upenalty = length_penalty(&slices, 100_000);
    let umatrix = DistanceMatrix::compute(usage.len(), |i, j| {
        dtw_distance_with_penalty(&usage[i], &usage[j], upenalty)
    });
    let perf: Vec<f64> = result
        .completed
        .iter()
        .map(|r| r.request_cpi().unwrap_or(0.0))
        .collect();
    let mut all = Vec::new();
    for i in 0..usage.len() {
        for j in (i + 1)..usage.len() {
            all.push(umatrix.get(i, j));
        }
    }
    let pairs = multi_metric_pairs(
        &umatrix,
        &perf,
        percentile(&all, 0.15).unwrap(),
        (percentile(&perf, 0.9).unwrap() - percentile(&perf, 0.1).unwrap()) * 0.5,
    );
    println!("\nmulti-metric anomaly pairs (similar usage, divergent CPI):");
    for p in pairs.iter().take(3) {
        println!(
            "  {} (CPI {:.2}) vs reference {} (CPI {:.2}) — usage distance {:.2}",
            result.completed[p.anomaly].class,
            perf[p.anomaly],
            result.completed[p.reference].class,
            perf[p.reference],
            p.usage_distance
        );
    }
    if pairs.is_empty() {
        println!("  none above thresholds in this run");
    }
}
