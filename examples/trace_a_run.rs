//! Trace one simulated TPC-C run and export a Perfetto trace plus a
//! metrics sidecar:
//!
//! ```text
//! cargo run --release --example trace_a_run
//! ```
//!
//! Open the trace at <https://ui.perfetto.dev> ("Open trace file") to see
//! per-core execution tracks, nested request spans, sampling instants,
//! and context-switch markers on the simulated clock.

use request_behavior_variations::os::{run_simulation_traced, SimConfig};
use request_behavior_variations::telemetry::{MemorySink, PerfettoTrace};
use request_behavior_variations::workloads::Tpcc;

fn main() -> std::io::Result<()> {
    // 50 closed-loop TPC-C transactions on the paper's 4-core machine.
    let cfg = SimConfig::paper_default();
    let cores = cfg.machine.topology.cores;
    let mut factory = Tpcc::new(1, 0.05);
    let mut sink = MemorySink::new();
    let result =
        run_simulation_traced(cfg, &mut factory, 50, &mut sink).expect("valid configuration");

    println!(
        "simulated {} requests in {:.2} ms; {} trace events",
        result.completed.len(),
        result.total_time.as_micros_f64() / 1e3,
        sink.len()
    );

    let out = std::env::temp_dir().join("rbv_trace_a_run.json");
    PerfettoTrace::from_events(&sink.events, cores).write_to(&out)?;
    println!(
        "wrote {} — open it at https://ui.perfetto.dev",
        out.display()
    );
    Ok(())
}
