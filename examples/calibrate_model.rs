//! Anchoring the analytical contention model: replay synthetic traces
//! through the trace-driven set-associative cache simulator and compare
//! the measured steady-state miss ratios against the analytical curve the
//! execution engine uses at every scheduling tick.
//!
//! ```text
//! cargo run --release --example calibrate_model
//! ```

use request_behavior_variations::mem::calibrate::{fit_exponent, sweep_curve, TraceKind};
use request_behavior_variations::mem::model::miss_ratio;

fn main() {
    for (kind, name) in [
        (TraceKind::Uniform, "uniform reuse"),
        (TraceKind::Zipf, "Zipf(1.0) reuse"),
    ] {
        let points = sweep_curve(kind, 1.0, 1.0, 2026);
        let (fitted, err) = fit_exponent(&points, 1.0);
        println!("{name} — miss ratio vs cache share (ws = 512 KB):");
        println!("  share/ws   measured   fitted curve (exp {fitted:.2})");
        for p in &points {
            let refit = miss_ratio(p.share_bytes, p.ws_bytes, 1.0, fitted);
            println!(
                "  {:8.3}   {:8.3}   {:12.3}",
                p.share_bytes / p.ws_bytes,
                p.measured,
                refit,
            );
        }
        println!("  best-fit exponent: {fitted:.2} (mean |error| {err:.3})");
        println!();
    }
    println!("uniform reuse lands on exponent ~1.0 and strong Zipf skew near ~0.3:");
    println!("the Xeon 5160 model's exponent of 0.85 sits between those extremes,");
    println!("matching the moderate skew of server data references.");
}
