//! Contention-easing CPU scheduling end to end (§5): profile a workload's
//! L2-misses-per-instruction distribution, set the 80th-percentile
//! high-usage threshold, and compare the stock scheduler against the
//! contention-easing one on the same request stream.
//!
//! ```text
//! cargo run --release --example contention_scheduler
//! ```

use request_behavior_variations::core::series::Metric;
use request_behavior_variations::core::stats::{mean, percentile};
use request_behavior_variations::os::{run_simulation, SchedulerPolicy, SimConfig};
use request_behavior_variations::sim::Cycles;
use request_behavior_variations::workloads::Tpch;

fn main() {
    // --- 1. Profiling pass: measure the workload's misses/instruction
    // distribution under the stock scheduler.
    let mut factory = Tpch::new(5, 0.5);
    let mut config = SimConfig::paper_default().with_interrupt_sampling(1_000);
    config.concurrency = 12;
    let profile = run_simulation(config.clone(), &mut factory, 60).expect("valid");
    let mut mpi = Vec::new();
    for r in &profile.completed {
        let (_, mut v) = r.timeline.weighted_values(Metric::L2MissesPerIns);
        mpi.append(&mut v);
    }
    let threshold = percentile(&mpi, 0.8).expect("samples collected");
    println!("80th-percentile L2 misses/instruction threshold: {threshold:.5}");

    // --- 2. Same stream under both schedulers.
    let report = |label: &str, scheduler: SchedulerPolicy| {
        let mut cfg = config.clone();
        cfg.scheduler = scheduler;
        cfg.measure_threshold = Some(threshold);
        let mut factory = Tpch::new(99, 0.5);
        let r = run_simulation(cfg, &mut factory, 200).expect("valid");
        let cpis = r.request_cpis();
        println!(
            "{label:18} mean CPI {:.2} | p99 CPI {:.2} | time with >=3 cores high {:.2}%",
            mean(&cpis).unwrap(),
            percentile(&cpis, 0.99).unwrap(),
            r.stats.high_usage_fraction_at_least(3) * 100.0
        );
    };

    report("stock scheduler", SchedulerPolicy::Stock);
    report(
        "contention-easing",
        SchedulerPolicy::ContentionEasing {
            resched_interval: Cycles::from_millis(5),
            high_usage_threshold: threshold,
            alpha: 0.6,
        },
    );
    println!("(the contention-easing policy trims the worst case, not the average — §5.2)");
}
