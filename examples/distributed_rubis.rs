//! The paper's §7 distributed future work, end to end: deploy the
//! three-tier RUBiS service either consolidated on one 4-core machine or
//! distributed across a three-machine cluster (web / application /
//! database tiers on dedicated boxes with independent memory systems),
//! and decompose each request's behavior per tier — the "local and
//! inter-machine variations" the paper anticipates.
//!
//! ```text
//! cargo run --release --example distributed_rubis
//! ```

use request_behavior_variations::core::stats::{coefficient_of_variation, mean, percentile};
use request_behavior_variations::mem::MachineSpec;
use request_behavior_variations::os::config::MultiMachine;
use request_behavior_variations::os::{run_simulation, RunResult, SimConfig};
use request_behavior_variations::sim::Cycles;
use request_behavior_variations::workloads::Rubis;

fn report(label: &str, result: &RunResult) {
    let latencies_ms: Vec<f64> = result
        .completed
        .iter()
        .map(|c| c.latency().as_f64() / 3.0e6)
        .collect();
    let cpis = result.request_cpis();
    println!(
        "{label:24} requests {:4} | latency p50 {:.2} ms, p99 {:.2} ms | mean CPI {:.2}",
        result.completed.len(),
        percentile(&latencies_ms, 0.5).unwrap(),
        percentile(&latencies_ms, 0.99).unwrap(),
        mean(&cpis).unwrap(),
    );

    // Per-tier decomposition: stage 0 = web tier, 1 = EJB tier, 2 = DB.
    let tiers = ["web tier", "app tier (EJB)", "database"];
    for (t, name) in tiers.iter().enumerate() {
        let tier_cpis: Vec<f64> = result
            .completed
            .iter()
            .filter_map(|c| c.stage_cpis().get(t).copied())
            .collect();
        let ones = vec![1.0; tier_cpis.len()];
        println!(
            "  {name:16} mean CPI {:.2}, inter-request CoV {:.3}",
            mean(&tier_cpis).unwrap_or(f64::NAN),
            coefficient_of_variation(&ones, &tier_cpis).unwrap_or(0.0),
        );
    }
}

fn main() {
    let n = 150;

    // --- Consolidated: all three tiers share one 4-core box.
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(100);
    cfg.seed = 7;
    let mut f = Rubis::new(7, 1.0);
    let consolidated = run_simulation(cfg, &mut f, n).expect("valid");
    report("consolidated (1 box)", &consolidated);
    println!();

    // --- Distributed: one machine per tier, 60 us network hops.
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(100);
    cfg.machine = MachineSpec::xeon_5160_cluster(3);
    cfg.multi_machine = Some(MultiMachine {
        machines: 3,
        network_hop_delay: Cycles::from_micros(60),
    });
    cfg.concurrency = 18;
    cfg.seed = 7;
    let mut f = Rubis::new(7, 1.0);
    let distributed = run_simulation(cfg, &mut f, n).expect("valid");
    report("distributed (3 boxes)", &distributed);

    println!();
    println!("distribution isolates tiers (the database tier's CPI drops: it no longer");
    println!("co-runs with EJB heap churn) at the price of two network hops per request");
    println!("and per-tier load imbalance — the component-placement tradeoff the");
    println!("paper's future-work section points at.");
}
