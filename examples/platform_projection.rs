//! Projecting measured request behavior onto a new hardware platform —
//! the paper's §7 future-work idea, built on fine-grained variation
//! patterns: each sample period's memory-bound fraction is rescaled by the
//! target machine's latencies, so speedups land exactly where a request is
//! actually memory-bound.
//!
//! The projection is validated against ground truth: we re-run the same
//! workload (same seeds) on a simulated machine with the target constants
//! and compare predicted against actually-measured request CPI.
//!
//! ```text
//! cargo run --release --example platform_projection
//! ```

use request_behavior_variations::core::stats::mean;
use request_behavior_variations::mem::MachineSpec;
use request_behavior_variations::os::{run_simulation, PlatformProjection, SimConfig};
use request_behavior_variations::workloads::{factory_for, AppId};

fn main() {
    let source = MachineSpec::xeon_5160();
    // A DDR3-generation upgrade: ~40% lower memory latency, faster L2.
    let target = MachineSpec {
        l2_hit_cycles: 11.0,
        mem_base_cycles: 150.0,
        peak_lines_per_cycle: source.peak_lines_per_cycle * 2.0,
        ..source
    };
    let projection = PlatformProjection::new(source, target);

    println!(
        "{:12} {:>12} {:>14} {:>12} {:>10}",
        "application", "source CPI", "projected CPI", "actual CPI", "error"
    );
    for app in AppId::SERVER_APPS {
        let scale = match app {
            AppId::Tpch => 0.25,
            AppId::Webwork => 0.05,
            _ => 0.5,
        };
        let n = 40;
        // Serial runs isolate the latency effect from dynamic contention.
        let run = |machine: MachineSpec| {
            let mut cfg = SimConfig::paper_default()
                .with_interrupt_sampling(app.sampling_period_micros())
                .serial();
            cfg.machine = machine;
            let mut factory = factory_for(app, 99, scale);
            run_simulation(cfg, factory.as_mut(), n).expect("valid")
        };
        let measured_src = run(source);
        let measured_tgt = run(target);

        let src_cpi = mean(&measured_src.request_cpis()).unwrap();
        let actual_tgt_cpi = mean(&measured_tgt.request_cpis()).unwrap();
        let projected: Vec<f64> = measured_src
            .completed
            .iter()
            .filter_map(|r| {
                let t = projection.project_timeline(&r.timeline);
                t.average(request_behavior_variations::core::series::Metric::Cpi)
            })
            .collect();
        let projected_cpi = mean(&projected).unwrap();
        println!(
            "{:12} {:>12.3} {:>14.3} {:>12.3} {:>9.1}%",
            app.to_string(),
            src_cpi,
            projected_cpi,
            actual_tgt_cpi,
            (projected_cpi / actual_tgt_cpi - 1.0) * 100.0
        );
    }
    println!();
    println!("projection uses only source-platform measurements; 'actual' re-runs the");
    println!("workload on the target machine as ground truth.");
}
